package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"

	"sphenergy/internal/atomicio"
)

// Label is one metric dimension (e.g. rank="3", kernel="momentumEnergy").
type Label struct {
	Name, Value string
}

// L builds a label.
func L(name, value string) Label { return Label{Name: name, Value: value} }

// Counter is a monotonically increasing metric. A nil *Counter is a valid
// no-op. Updates are a single atomic CAS — safe and cheap from any
// goroutine.
type Counter struct {
	bits atomic.Uint64
}

// Inc adds 1.
func (c *Counter) Inc() { c.Add(1) }

// Add increases the counter; negative deltas are ignored (counters are
// monotonic by contract).
func (c *Counter) Add(v float64) {
	if c == nil || v < 0 {
		return
	}
	atomicAdd(&c.bits, v)
}

// Value returns the current count.
func (c *Counter) Value() float64 {
	if c == nil {
		return 0
	}
	return math.Float64frombits(c.bits.Load())
}

// Gauge is a metric that can go up and down (current clock, queue depth).
// A nil *Gauge is a valid no-op.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores the gauge value.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Add shifts the gauge by v.
func (g *Gauge) Add(v float64) {
	if g == nil {
		return
	}
	atomicAdd(&g.bits, v)
}

// Value returns the current gauge value.
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// atomicAdd CAS-adds a float64 delta onto bits.
func atomicAdd(bits *atomic.Uint64, v float64) {
	for {
		old := bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Histogram is a fixed-bucket distribution. Buckets are cumulative
// upper-bound counts in Prometheus style; an implicit +Inf bucket catches
// everything. A nil *Histogram is a valid no-op.
//
// The record path is lock-free and allocation-free: one inlined binary
// search over the (immutable) upper bounds plus three atomic updates, so
// per-pass latency recording can sit inside hot loops without perturbing
// what it measures. Readers (scrapes, quantiles) see each observation's
// bucket count, sum and total settle independently — a scrape racing a
// recorder may be off by the in-flight observation, which fixed-rate
// scraping tolerates by construction.
type Histogram struct {
	upper  []float64       // sorted upper bounds, exclusive of +Inf
	counts []atomic.Uint64 // len(upper)+1; last is the +Inf bucket
	sum    atomic.Uint64   // float64 bits, CAS-accumulated
	total  atomic.Uint64
}

// newHistogram builds a histogram over sorted upper bounds.
func newHistogram(buckets []float64) *Histogram {
	up := append([]float64(nil), buckets...)
	sort.Float64s(up)
	return &Histogram{upper: up, counts: make([]atomic.Uint64, len(up)+1)}
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	// First bucket with upper >= v; len(upper) is the +Inf bucket.
	lo, hi := 0, len(h.upper)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if h.upper[mid] < v {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	h.counts[lo].Add(1)
	atomicAdd(&h.sum, v)
	h.total.Add(1)
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.total.Load()
}

// Sum returns the sum of observations.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sum.Load())
}

// snapshot copies the histogram state (cumulative bucket counts). The
// reported total is the sum of the bucket counts, so bucket lines and the
// _count line stay mutually consistent even when a scrape races recorders.
func (h *Histogram) snapshot() (upper []float64, cumulative []uint64, sum float64, total uint64) {
	upper = h.upper
	cumulative = make([]uint64, len(h.counts))
	running := uint64(0)
	for i := range h.counts {
		running += h.counts[i].Load()
		cumulative[i] = running
	}
	return upper, cumulative, math.Float64frombits(h.sum.Load()), cumulative[len(cumulative)-1]
}

// Quantile estimates the q-th quantile (0 < q < 1) from the bucket counts
// by linear interpolation inside the holding bucket — the same estimator
// Prometheus' histogram_quantile applies server-side. The first bucket
// interpolates from zero (or from its upper bound when that is negative),
// and samples in the +Inf bucket clamp to the highest finite bound.
//
// Every input has a defined, finite result — never NaN: a nil or empty
// histogram (and a NaN q) reports 0, matching Count() == 0, so quantile
// values always survive JSON encoding (encoding/json rejects NaN) and never
// poison downstream arithmetic.
func (h *Histogram) Quantile(q float64) float64 {
	if h == nil {
		return 0
	}
	upper, cum, _, total := h.snapshot()
	return bucketQuantile(q, upper, cum, total)
}

// bucketQuantile interpolates a quantile from cumulative bucket counts.
func bucketQuantile(q float64, upper []float64, cum []uint64, total uint64) float64 {
	if total == 0 || math.IsNaN(q) {
		return 0
	}
	if q < 0 {
		q = 0
	} else if q > 1 {
		q = 1
	}
	rank := q * float64(total)
	i := 0
	for i < len(upper) && float64(cum[i]) < rank {
		i++
	}
	if i >= len(upper) {
		// +Inf bucket: no finite upper bound to interpolate toward.
		if len(upper) == 0 {
			return 0
		}
		return upper[len(upper)-1]
	}
	lower := 0.0
	var below uint64
	if i > 0 {
		lower = upper[i-1]
		below = cum[i-1]
	} else if upper[0] <= 0 {
		lower = upper[0]
	}
	inBucket := cum[i] - below
	if inBucket == 0 {
		return upper[i]
	}
	frac := (rank - float64(below)) / float64(inBucket)
	if frac < 0 {
		frac = 0
	} else if frac > 1 {
		frac = 1
	}
	return lower + (upper[i]-lower)*frac
}

// exposedQuantiles are the quantiles rendered into both exposition formats
// for every histogram family (the tails tuning decisions read).
var exposedQuantiles = []float64{0.5, 0.95, 0.99}

// LinearBuckets returns n upper bounds start, start+width, ...
func LinearBuckets(start, width float64, n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = start + float64(i)*width
	}
	return out
}

// ExpBuckets returns n upper bounds start, start*factor, ...
func ExpBuckets(start, factor float64, n int) []float64 {
	out := make([]float64, n)
	v := start
	for i := range out {
		out[i] = v
		v *= factor
	}
	return out
}

// LogBuckets returns log-spaced upper bounds from min to max (inclusive)
// with perDecade buckets per factor-of-ten — the fixed layout latency
// histograms use so quantile resolution is a constant relative error
// (~1/perDecade of a decade) across the whole range.
func LogBuckets(min, max float64, perDecade int) []float64 {
	if min <= 0 || max <= min || perDecade < 1 {
		return []float64{min, max}
	}
	step := math.Pow(10, 1/float64(perDecade))
	var out []float64
	for v := min; v < max*(1-1e-12); v *= step {
		out = append(out, v)
	}
	return append(out, max)
}

// LatencyBuckets is the standard wall-clock latency layout: 100 ns to 10 s,
// four buckets per decade (≤ ~78% relative quantile error per bucket).
func LatencyBuckets() []float64 { return LogBuckets(1e-7, 10, 4) }

// metricKind tags a family's type for exposition.
type metricKind int

const (
	kindCounter metricKind = iota
	kindGauge
	kindHistogram
)

func (k metricKind) String() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindGauge:
		return "gauge"
	case kindHistogram:
		return "histogram"
	}
	return "untyped"
}

// child is one labeled instance within a family.
type child struct {
	labels []Label
	c      *Counter
	g      *Gauge
	h      *Histogram
}

// family groups all label combinations of one metric name.
type family struct {
	name     string
	help     string
	kind     metricKind
	buckets  []float64
	children map[string]*child
	order    []string // insertion order of children keys
}

// Registry holds the run's metric families. A nil *Registry is a valid
// no-op: lookups return nil metrics, whose methods are themselves no-ops.
type Registry struct {
	mu   sync.Mutex
	fams map[string]*family
	ord  []string
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{fams: map[string]*family{}}
}

// Counter registers (or fetches) a counter with the given labels.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	if r == nil {
		return nil
	}
	ch := r.child(name, help, kindCounter, nil, labels)
	return ch.c
}

// Gauge registers (or fetches) a gauge with the given labels.
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	if r == nil {
		return nil
	}
	ch := r.child(name, help, kindGauge, nil, labels)
	return ch.g
}

// Histogram registers (or fetches) a fixed-bucket histogram. The bucket
// list is set by the first registration of the name; later calls reuse it.
func (r *Registry) Histogram(name, help string, buckets []float64, labels ...Label) *Histogram {
	if r == nil {
		return nil
	}
	ch := r.child(name, help, kindHistogram, buckets, labels)
	return ch.h
}

// child resolves a (name, labels) pair, creating family and instance on
// first use. Registering one name as two different kinds is a programming
// error and panics.
func (r *Registry) child(name, help string, kind metricKind, buckets []float64, labels []Label) *child {
	key := labelKey(labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	f, ok := r.fams[name]
	if !ok {
		f = &family{name: name, help: help, kind: kind, buckets: buckets,
			children: map[string]*child{}}
		r.fams[name] = f
		r.ord = append(r.ord, name)
	} else if f.kind != kind {
		panic(fmt.Sprintf("telemetry: metric %q registered as %s and %s", name, f.kind, kind))
	}
	ch, ok := f.children[key]
	if !ok {
		ch = &child{labels: append([]Label(nil), labels...)}
		switch kind {
		case kindCounter:
			ch.c = &Counter{}
		case kindGauge:
			ch.g = &Gauge{}
		case kindHistogram:
			ch.h = newHistogram(f.buckets)
		}
		f.children[key] = ch
		f.order = append(f.order, key)
	}
	return ch
}

// labelKey serializes a label set into a stable map key.
func labelKey(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	ls := append([]Label(nil), labels...)
	sort.Slice(ls, func(a, b int) bool { return ls[a].Name < ls[b].Name })
	var b strings.Builder
	for i, l := range ls {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Name)
		b.WriteByte('=')
		b.WriteString(l.Value)
	}
	return b.String()
}

// snapshotFamilies copies the family list under the registry lock so
// exposition can render without holding it.
func (r *Registry) snapshotFamilies() []*family {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]*family, 0, len(r.ord))
	for _, n := range r.ord {
		out = append(out, r.fams[n])
	}
	return out
}

// WritePrometheus renders the registry in the Prometheus text exposition
// format (version 0.0.4): HELP/TYPE headers followed by one line per
// labeled sample, histograms as cumulative _bucket/_sum/_count series.
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	var b strings.Builder
	for _, f := range r.snapshotFamilies() {
		if f.help != "" {
			fmt.Fprintf(&b, "# HELP %s %s\n", f.name, escapeHelp(f.help))
		}
		fmt.Fprintf(&b, "# TYPE %s %s\n", f.name, f.kind)
		for _, key := range f.order {
			ch := f.children[key]
			switch f.kind {
			case kindCounter:
				fmt.Fprintf(&b, "%s%s %s\n", f.name, renderLabels(ch.labels), fmtFloat(ch.c.Value()))
			case kindGauge:
				fmt.Fprintf(&b, "%s%s %s\n", f.name, renderLabels(ch.labels), fmtFloat(ch.g.Value()))
			case kindHistogram:
				upper, cum, sum, total := ch.h.snapshot()
				for i, u := range upper {
					le := append(append([]Label(nil), ch.labels...), L("le", fmtFloat(u)))
					fmt.Fprintf(&b, "%s_bucket%s %d\n", f.name, renderLabels(le), cum[i])
				}
				inf := append(append([]Label(nil), ch.labels...), L("le", "+Inf"))
				fmt.Fprintf(&b, "%s_bucket%s %d\n", f.name, renderLabels(inf), total)
				fmt.Fprintf(&b, "%s_sum%s %s\n", f.name, renderLabels(ch.labels), fmtFloat(sum))
				fmt.Fprintf(&b, "%s_count%s %d\n", f.name, renderLabels(ch.labels), total)
				if total > 0 {
					// Pre-computed p50/p95/p99 as a sibling gauge family in
					// summary style, so scrapers without histogram_quantile
					// (and the JSON twin's consumers) read the same tails.
					for _, q := range exposedQuantiles {
						ql := append(append([]Label(nil), ch.labels...), L("quantile", fmtFloat(q)))
						fmt.Fprintf(&b, "%s_quantile%s %s\n", f.name, renderLabels(ql),
							fmtFloat(bucketQuantile(q, upper, cum, total)))
					}
				}
			}
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// renderLabels renders {a="x",b="y"}, or "" for an empty set.
func renderLabels(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range labels {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Name)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(l.Value))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

func escapeLabel(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	s = strings.ReplaceAll(s, `"`, `\"`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

func fmtFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// SampleSnapshot is one labeled value in a JSON metrics snapshot.
type SampleSnapshot struct {
	Labels map[string]string `json:"labels,omitempty"`
	Value  float64           `json:"value"`
	// Histogram-only fields. Quantiles holds the estimated p50/p95/p99
	// keyed by quantile ("0.5", "0.95", "0.99").
	Sum       float64            `json:"sum,omitempty"`
	Count     uint64             `json:"count,omitempty"`
	Buckets   map[string]uint64  `json:"buckets,omitempty"`
	Quantiles map[string]float64 `json:"quantiles,omitempty"`
}

// MetricSnapshot is one family in a JSON metrics snapshot.
type MetricSnapshot struct {
	Name    string           `json:"name"`
	Type    string           `json:"type"`
	Help    string           `json:"help,omitempty"`
	Samples []SampleSnapshot `json:"samples"`
}

// Snapshot captures the registry's current values.
func (r *Registry) Snapshot() []MetricSnapshot {
	if r == nil {
		return nil
	}
	var out []MetricSnapshot
	for _, f := range r.snapshotFamilies() {
		ms := MetricSnapshot{Name: f.name, Type: f.kind.String(), Help: f.help}
		for _, key := range f.order {
			ch := f.children[key]
			s := SampleSnapshot{}
			if len(ch.labels) > 0 {
				s.Labels = map[string]string{}
				for _, l := range ch.labels {
					s.Labels[l.Name] = l.Value
				}
			}
			switch f.kind {
			case kindCounter:
				s.Value = ch.c.Value()
			case kindGauge:
				s.Value = ch.g.Value()
			case kindHistogram:
				upper, cum, sum, total := ch.h.snapshot()
				s.Sum, s.Count = sum, total
				s.Buckets = map[string]uint64{}
				for i, u := range upper {
					s.Buckets[fmtFloat(u)] = cum[i]
				}
				s.Buckets["+Inf"] = total
				s.Value = sum
				if total > 0 {
					s.Quantiles = map[string]float64{}
					for _, q := range exposedQuantiles {
						s.Quantiles[fmtFloat(q)] = bucketQuantile(q, upper, cum, total)
					}
				}
			}
			ms.Samples = append(ms.Samples, s)
		}
		out = append(out, ms)
	}
	return out
}

// WriteJSON writes the snapshot as indented JSON.
func (r *Registry) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(map[string]any{"metrics": r.Snapshot()})
}

// WriteFile writes the JSON snapshot to path, atomically: a crash or kill
// mid-write never leaves a truncated snapshot behind.
func (r *Registry) WriteFile(path string) error {
	if err := atomicio.WriteFile(path, r.WriteJSON); err != nil {
		return fmt.Errorf("telemetry: write metrics: %w", err)
	}
	return nil
}
