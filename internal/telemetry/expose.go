package telemetry

import (
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"strings"
	"time"
)

// Handler returns an http.Handler serving the registry: Prometheus text at
// the request path (the conventional /metrics mount), or the JSON snapshot
// when the client asks for it via "?format=json" or an Accept header
// containing application/json.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		if req.URL.Query().Get("format") == "json" ||
			strings.Contains(req.Header.Get("Accept"), "application/json") {
			w.Header().Set("Content-Type", "application/json; charset=utf-8")
			_ = r.WriteJSON(w)
			return
		}
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = r.WritePrometheus(w)
	})
}

// MetricsServer is a live exposition endpoint started by ServeMetrics.
type MetricsServer struct {
	// Addr is the bound listen address (resolves ":0" to the real port).
	Addr string
	srv  *http.Server
}

// Close shuts the listener down.
func (s *MetricsServer) Close() error { return s.srv.Close() }

// Mount attaches an extra handler to the metrics server's mux — the hook
// other observability surfaces (the event ledger's /events SSE stream and
// /status summary) use to ride on the same listener.
type Mount struct {
	Pattern string
	Handler http.Handler
}

// ServeMetrics starts an HTTP listener on addr exposing the registry at
// /metrics (Prometheus text) and /metrics.json (JSON snapshot), plus
// /healthz for liveness probes and the standard net/http/pprof handlers
// under /debug/pprof/ for on-demand profiling of long runs. Extra mounts
// are attached to the same mux. It returns once the listener is bound;
// serving continues in a background goroutine until Close.
func ServeMetrics(addr string, r *Registry, extra ...Mount) (*MetricsServer, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("telemetry: listen %s: %w", addr, err)
	}
	mux := http.NewServeMux()
	mux.Handle("/metrics", r.Handler())
	mux.HandleFunc("/metrics.json", func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		_ = r.WriteJSON(w)
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	for _, m := range extra {
		mux.Handle(m.Pattern, m.Handler)
	}
	srv := &http.Server{Handler: mux, ReadHeaderTimeout: 5 * time.Second}
	go func() { _ = srv.Serve(ln) }()
	return &MetricsServer{Addr: ln.Addr().String(), srv: srv}, nil
}
