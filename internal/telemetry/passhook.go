package telemetry

// PassHistogramHook returns a hook with the sph.Options.PassHook shape
// that records each pipeline pass's wall-clock latency into a per-pass
// histogram (metric name with a "pass" label) on reg. Histograms are
// registered lazily on a pass's first observation and re-registration is
// idempotent, so one hook per run (or per mode) all feed the same series.
// The returned hook must be called from a single goroutine — RunStep's
// contract. A nil registry returns a nil hook, keeping the pipeline's
// nil-check fast path.
func PassHistogramHook(reg *Registry, metric, help string) func(pass string, seconds float64) {
	if reg == nil {
		return nil
	}
	hists := make(map[string]*Histogram)
	return func(pass string, seconds float64) {
		h, ok := hists[pass]
		if !ok {
			h = reg.Histogram(metric, help, LatencyBuckets(), L("pass", pass))
			hists[pass] = h
		}
		h.Observe(seconds)
	}
}
