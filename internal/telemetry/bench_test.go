package telemetry

import "testing"

// The no-op path must be near-free: a nil tracer/registry costs one nil
// check per call site, preserving the §III-B non-perturbation property for
// uninstrumented runs. BenchmarkTelemetryOverhead in internal/core measures
// the end-to-end run-level cost; these isolate the per-call primitives.

func BenchmarkSpanRecord(b *testing.B) {
	// Roll to a fresh tracer periodically so the benchmark measures
	// recording at a realistic trace size instead of growing one buffer
	// to b.N (millions of) events.
	const traceSize = 4096
	tr := NewTracer(1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if i%traceSize == 0 {
			tr = NewTracer(1)
		}
		tr.Complete(0, "function", "momentumEnergy", float64(i), 0.5,
			Int("clock_mhz", 1005), Float("energy_j", 3.5))
	}
}

func BenchmarkSpanRecordInterned(b *testing.B) {
	const traceSize = 4096
	tr := NewTracer(1)
	ref := tr.Intern("function", "momentumEnergy", "clock_mhz", "energy_j")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if i%traceSize == 0 {
			tr.Reset()
		}
		tr.CompleteRef(0, ref, float64(i), 0.5, 1005, 3.5)
	}
}

func BenchmarkSpanRecordNilTracer(b *testing.B) {
	var tr *Tracer
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tr.Complete(0, "function", "momentumEnergy", float64(i), 0.5)
	}
}

func BenchmarkCounterInc(b *testing.B) {
	c := NewRegistry().Counter("x_total", "")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

func BenchmarkCounterIncNil(b *testing.B) {
	var c *Counter
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

func BenchmarkHistogramObserve(b *testing.B) {
	h := NewRegistry().Histogram("x_s", "", ExpBuckets(1e-6, 10, 10))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(float64(i % 1000))
	}
}
