package telemetry

import "testing"

// The no-op path must be near-free: a nil tracer/registry costs one nil
// check per call site, preserving the §III-B non-perturbation property for
// uninstrumented runs. BenchmarkTelemetryOverhead in internal/core measures
// the end-to-end run-level cost; these isolate the per-call primitives.

func BenchmarkSpanRecord(b *testing.B) {
	// Roll to a fresh tracer periodically so the benchmark measures
	// recording at a realistic trace size instead of growing one buffer
	// to b.N (millions of) events.
	const traceSize = 4096
	tr := NewTracer(1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if i%traceSize == 0 {
			tr = NewTracer(1)
		}
		tr.Complete(0, "function", "momentumEnergy", float64(i), 0.5,
			Int("clock_mhz", 1005), Float("energy_j", 3.5))
	}
}

func BenchmarkSpanRecordInterned(b *testing.B) {
	const traceSize = 4096
	tr := NewTracer(1)
	ref := tr.Intern("function", "momentumEnergy", "clock_mhz", "energy_j")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if i%traceSize == 0 {
			tr.Reset()
		}
		tr.CompleteRef(0, ref, float64(i), 0.5, 1005, 3.5)
	}
}

func BenchmarkSpanRecordNilTracer(b *testing.B) {
	var tr *Tracer
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tr.Complete(0, "function", "momentumEnergy", float64(i), 0.5)
	}
}

func BenchmarkCounterInc(b *testing.B) {
	c := NewRegistry().Counter("x_total", "")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

func BenchmarkCounterIncNil(b *testing.B) {
	var c *Counter
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

// The histogram record path is the per-pass latency hot path: target is
// ≤ the interned span fast-path cost (~20-40 ns) at 0 allocs/op. Measured
// on this implementation: ~15-25 ns serial (binary search over 29 bounds +
// three atomics), scaling near-linearly under RunParallel since recorders
// only contend on the CAS-added sum word.
func BenchmarkHistogramObserve(b *testing.B) {
	h := NewRegistry().Histogram("x_s", "", ExpBuckets(1e-6, 10, 10))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(float64(i % 1000))
	}
}

func BenchmarkHistogramObserveLatencyBuckets(b *testing.B) {
	h := NewRegistry().Histogram("x_s", "", LatencyBuckets())
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(1e-7 * float64(i%100000))
	}
}

func BenchmarkHistogramObserveParallel(b *testing.B) {
	h := NewRegistry().Histogram("x_s", "", LatencyBuckets())
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		v := 1e-6
		for pb.Next() {
			h.Observe(v)
			v *= 1.001
			if v > 1 {
				v = 1e-6
			}
		}
	})
}

func BenchmarkHistogramObserveNil(b *testing.B) {
	var h *Histogram
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(float64(i))
	}
}
