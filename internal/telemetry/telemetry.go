// Package telemetry is the unified observability substrate of the
// repository: a span tracer recording nestable named spans into lock-cheap
// per-rank buffers with Chrome trace_event JSON export, and a metrics
// registry of counters, gauges and histograms with Prometheus text-format
// exposition and JSON snapshots.
//
// The design follows the paper's §III-B non-perturbation requirement: every
// entry point is safe on a nil receiver and returns immediately, so code can
// be instrumented unconditionally — a run without a tracer or registry pays
// only a nil check. Hot-path recording is allocation-free for up to two
// attributes (attributes are tagged unions copied inline into the event
// buffer, not boxed interfaces) and takes one short per-rank (sharded)
// mutex; all serialization work happens at export time. Call sites that
// fire every step can go further and intern the span identity once
// (Intern + CompleteRef/InstantRef), reducing each record to a 40-byte
// struct write with no string traffic at all.
package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"sync"

	"sphenergy/internal/atomicio"
)

// attrKind tags the payload of an Attr.
type attrKind uint8

const (
	attrString attrKind = iota
	attrInt
	attrFloat
)

// Attr is one key/value attribute attached to a span or event, rendered
// into the Chrome trace "args" object. Construct with String, Int or Float;
// the value lives inline (no interface boxing), keeping span recording off
// the heap.
type Attr struct {
	Key  string
	s    string
	f    float64
	kind attrKind
}

// String builds a string attribute.
func String(key, value string) Attr { return Attr{Key: key, s: value, kind: attrString} }

// Int builds an integer attribute.
func Int(key string, value int) Attr { return Attr{Key: key, f: float64(value), kind: attrInt} }

// Float builds a float attribute.
func Float(key string, value float64) Attr { return Attr{Key: key, f: value, kind: attrFloat} }

// Value unboxes the attribute (string, int64 or float64).
func (a Attr) Value() any { return a.value() }

// Float64 returns the attribute's numeric value, 0 for string attributes.
// Span read-back consumers (energy attribution) use this to pull metric
// args like "energy_j" out of kernel spans without type switches.
func (a Attr) Float64() float64 {
	if a.kind == attrString {
		return 0
	}
	return a.f
}

// value unboxes the attribute for JSON export.
func (a Attr) value() any {
	switch a.kind {
	case attrString:
		return a.s
	case attrInt:
		return int64(a.f)
	default:
		return a.f
	}
}

// GlobalTrack addresses the tracer's extra whole-run track (step spans, job
// phases) instead of a rank track.
const GlobalTrack = -1

// phase codes follow the Chrome trace_event format.
const (
	phaseComplete = 'X' // complete event: ts + dur
	phaseInstant  = 'i' // instant event
	phaseCounter  = 'C' // counter sample
	phaseMeta     = 'M' // metadata (track names)
)

// inlineAttrs is the attribute count recorded without heap allocation.
const inlineAttrs = 2

// event is one recorded trace event. Times are virtual simulation seconds;
// export converts to the microseconds Chrome expects.
type event struct {
	name   string
	cat    string
	startS float64
	durS   float64
	attrs  [inlineAttrs]Attr
	extra  []Attr // overflow beyond inlineAttrs, rare
	nattr  uint8
	ph     byte
}

// shard is one rank's event buffer. Each rank appends under its own mutex,
// so concurrent ranks never contend with each other. Generic and interned
// events live in separate buffers; the trace_event format does not require
// chronological order, so export emits them back to back.
type shard struct {
	mu     sync.Mutex
	events []event
	fast   []fastEvent
}

// add constructs the event directly in the buffer — a single struct write,
// no intermediate copies. The caller's variadic attrs slice is only read
// here, so escape analysis keeps it on the caller's stack.
func (s *shard) add(ph byte, cat, name string, startS, durS float64, attrs []Attr) {
	s.mu.Lock()
	s.events = append(s.events, event{name: name, cat: cat, startS: startS, durS: durS, ph: ph})
	e := &s.events[len(s.events)-1]
	e.nattr = uint8(copy(e.attrs[:], attrs))
	if len(attrs) > inlineAttrs {
		e.extra = append([]Attr(nil), attrs[inlineAttrs:]...)
	}
	s.mu.Unlock()
}

// fastEvent is one recorded event on the interned path: a 40-byte POD
// record whose identity (category, name, attribute keys) lives in the
// tracer's descriptor table. Hot loops record these instead of full events
// — no strings, no variadic slice, one small struct write under the shard
// mutex.
type fastEvent struct {
	startS float64
	durS   float64
	v0, v1 float64
	ref    SpanRef
	ph     byte
}

// addFast appends one interned event in place.
func (s *shard) addFast(ph byte, ref SpanRef, startS, durS, v0, v1 float64) {
	s.mu.Lock()
	s.fast = append(s.fast, fastEvent{startS: startS, durS: durS, v0: v0, v1: v1, ref: ref, ph: ph})
	s.mu.Unlock()
}

// SpanRef identifies a span descriptor interned with Tracer.Intern. Refs
// are only meaningful on the tracer that issued them.
type SpanRef uint32

// spanDesc is the interned identity of a hot span: its category, name, and
// up to two float-valued attribute keys.
type spanDesc struct {
	cat, name string
	keys      [inlineAttrs]string
	nkeys     uint8
}

// spanKey indexes the RecordSpan descriptor cache without allocating.
type spanKey struct{ cat, name string }

// Tracer records spans and events for one run. A nil *Tracer is a valid
// no-op sink: all methods return immediately. Spans recorded on the same
// rank track nest by containment when rendered in Perfetto or
// chrome://tracing.
type Tracer struct {
	shards []shard // one per rank, plus one global track at the end

	descMu sync.Mutex // guards descs growth; interning is cold-path
	descs  []spanDesc
	cache  sync.Map // spanKey → SpanRef, backing RecordSpan
}

// NewTracer creates a tracer with one track per rank plus the global track.
func NewTracer(ranks int) *Tracer {
	if ranks < 0 {
		ranks = 0
	}
	return &Tracer{shards: make([]shard, ranks+1)}
}

// Intern registers a span identity — category, name, and up to two
// attribute keys whose values are supplied per event — returning a ref for
// CompleteRef/InstantRef. Interning the identity once moves all string
// handling off the recording path; callers typically intern at setup or
// memoize per call site. Interning the same identity twice returns the
// same ref. On a nil tracer Intern returns 0; the ref is inert.
func (t *Tracer) Intern(category, name string, keys ...string) SpanRef {
	if t == nil {
		return 0
	}
	d := spanDesc{cat: category, name: name}
	d.nkeys = uint8(copy(d.keys[:], keys))
	t.descMu.Lock()
	defer t.descMu.Unlock()
	for i := range t.descs {
		if t.descs[i] == d {
			return SpanRef(i)
		}
	}
	t.descs = append(t.descs, d)
	return SpanRef(len(t.descs) - 1)
}

// CompleteRef records a finished span of an interned identity. v0 and v1
// fill the descriptor's attribute keys in order; surplus values are
// dropped at export.
func (t *Tracer) CompleteRef(rank int, ref SpanRef, startS, durS, v0, v1 float64) {
	if t == nil {
		return
	}
	t.shardFor(rank).addFast(phaseComplete, ref, startS, durS, v0, v1)
}

// InstantRef records a zero-duration event of an interned identity at tsS.
func (t *Tracer) InstantRef(rank int, ref SpanRef, tsS, v0, v1 float64) {
	if t == nil {
		return
	}
	t.shardFor(rank).addFast(phaseInstant, ref, tsS, 0, v0, v1)
}

// shardFor maps a rank (or GlobalTrack) to its buffer. Out-of-range ranks
// land on the global track rather than panicking.
func (t *Tracer) shardFor(rank int) *shard {
	if rank < 0 || rank >= len(t.shards)-1 {
		return &t.shards[len(t.shards)-1]
	}
	return &t.shards[rank]
}

// Complete records a finished span [startS, startS+durS) on a rank track.
func (t *Tracer) Complete(rank int, category, name string, startS, durS float64, attrs ...Attr) {
	if t == nil {
		return
	}
	t.shardFor(rank).add(phaseComplete, category, name, startS, durS, attrs)
}

// Instant records a zero-duration event at tsS on a rank track.
func (t *Tracer) Instant(rank int, category, name string, tsS float64, attrs ...Attr) {
	if t == nil {
		return
	}
	t.shardFor(rank).add(phaseInstant, category, name, tsS, 0, attrs)
}

// Counter records a counter sample at tsS; each attribute becomes one series
// of the named counter (rendered as a stacked area in the trace viewer).
func (t *Tracer) Counter(rank int, name string, tsS float64, values ...Attr) {
	if t == nil {
		return
	}
	t.shardFor(rank).add(phaseCounter, "", name, tsS, 0, values)
}

// RecordSpan is the plain-span entry point used through small local
// interfaces (e.g. mpisim's SpanRecorder), keeping subsystem packages free
// of a telemetry dependency. Each (category, name) identity is interned on
// first use, so repeated spans record on the fast path.
func (t *Tracer) RecordSpan(rank int, category, name string, startS, durS float64) {
	if t == nil {
		return
	}
	key := spanKey{cat: category, name: name}
	ref, ok := t.cache.Load(key)
	if !ok {
		ref, _ = t.cache.LoadOrStore(key, t.Intern(category, name))
	}
	t.CompleteRef(rank, ref.(SpanRef), startS, durS, 0, 0)
}

// SetTrackName labels a rank track ("rank 3", "sim") in the exported trace.
func (t *Tracer) SetTrackName(rank int, name string) {
	if t == nil {
		return
	}
	t.shardFor(rank).add(phaseMeta, "", "thread_name", 0, 0,
		[]Attr{String("name", name)})
}

// Reset drops all recorded events but keeps the shard buffers' capacity,
// so a long-lived process can export one run's trace and reuse the tracer
// for the next run without reallocating.
func (t *Tracer) Reset() {
	if t == nil {
		return
	}
	for i := range t.shards {
		s := &t.shards[i]
		s.mu.Lock()
		s.events = s.events[:0]
		s.fast = s.fast[:0]
		s.mu.Unlock()
	}
}

// Len returns the total number of recorded events.
func (t *Tracer) Len() int {
	if t == nil {
		return 0
	}
	n := 0
	for i := range t.shards {
		s := &t.shards[i]
		s.mu.Lock()
		n += len(s.events) + len(s.fast)
		s.mu.Unlock()
	}
	return n
}

// SpanEvent is the resolved, read-back view of one recorded event —
// interned descriptors are expanded back into category/name/args. This is
// the join surface for in-process consumers (energy attribution) that need
// the recorded spans without going through JSON export.
type SpanEvent struct {
	// Track is the rank track the event was recorded on, GlobalTrack for
	// the whole-run track.
	Track    int
	Category string
	Name     string
	StartS   float64
	DurS     float64
	// Instant marks zero-duration events ('i' phase).
	Instant bool
	Args    []Attr
}

// EndS returns the span's end time.
func (e SpanEvent) EndS() float64 { return e.StartS + e.DurS }

// Arg returns the named argument's numeric value (ok=false when absent).
func (e SpanEvent) Arg(key string) (float64, bool) {
	for _, a := range e.Args {
		if a.Key == key {
			return a.Float64(), true
		}
	}
	return 0, false
}

// Spans snapshots all recorded complete and instant events (counter and
// metadata records are skipped) across every track, resolving interned
// descriptors. Events within one track appear in recording order; tracks
// are concatenated rank 0..N then the global track. Safe to call while
// recording continues.
func (t *Tracer) Spans() []SpanEvent {
	if t == nil {
		return nil
	}
	t.descMu.Lock()
	descs := append([]spanDesc(nil), t.descs...)
	t.descMu.Unlock()
	var out []SpanEvent
	for tid := range t.shards {
		track := tid
		if tid == len(t.shards)-1 {
			track = GlobalTrack
		}
		s := &t.shards[tid]
		s.mu.Lock()
		buf := make([]event, len(s.events))
		copy(buf, s.events)
		fast := make([]fastEvent, len(s.fast))
		copy(fast, s.fast)
		s.mu.Unlock()
		for i := range buf {
			e := &buf[i]
			if e.ph != phaseComplete && e.ph != phaseInstant {
				continue
			}
			se := SpanEvent{Track: track, Category: e.cat, Name: e.name,
				StartS: e.startS, DurS: e.durS, Instant: e.ph == phaseInstant}
			if n := int(e.nattr) + len(e.extra); n > 0 {
				se.Args = make([]Attr, 0, n)
				se.Args = append(se.Args, e.attrs[:e.nattr]...)
				se.Args = append(se.Args, e.extra...)
			}
			out = append(out, se)
		}
		for i := range fast {
			fe := &fast[i]
			if int(fe.ref) >= len(descs) {
				continue
			}
			if fe.ph != phaseComplete && fe.ph != phaseInstant {
				continue
			}
			d := &descs[fe.ref]
			se := SpanEvent{Track: track, Category: d.cat, Name: d.name,
				StartS: fe.startS, DurS: fe.durS, Instant: fe.ph == phaseInstant}
			if d.nkeys > 0 {
				se.Args = make([]Attr, 0, d.nkeys)
				se.Args = append(se.Args, Float(d.keys[0], fe.v0))
				if d.nkeys > 1 {
					se.Args = append(se.Args, Float(d.keys[1], fe.v1))
				}
			}
			out = append(out, se)
		}
	}
	return out
}

// WriteJSON exports the recorded events as Chrome trace_event JSON (the
// "JSON object format": {"traceEvents": [...]}), loadable in Perfetto and
// chrome://tracing. Ranks map to tids of pid 0; times convert from virtual
// seconds to microseconds.
func (t *Tracer) WriteJSON(w io.Writer) error {
	events := []map[string]any{}
	if t != nil {
		t.descMu.Lock()
		descs := append([]spanDesc(nil), t.descs...)
		t.descMu.Unlock()
		for tid := range t.shards {
			s := &t.shards[tid]
			s.mu.Lock()
			buf := make([]event, len(s.events))
			copy(buf, s.events)
			fast := make([]fastEvent, len(s.fast))
			copy(fast, s.fast)
			s.mu.Unlock()
			for i := range buf {
				events = append(events, buf[i].jsonObject(tid))
			}
			for i := range fast {
				if int(fast[i].ref) < len(descs) {
					events = append(events, fast[i].jsonObject(tid, &descs[fast[i].ref]))
				}
			}
		}
	}
	enc := json.NewEncoder(w)
	return enc.Encode(map[string]any{
		"traceEvents":     events,
		"displayTimeUnit": "ms",
	})
}

// jsonObject renders one event in trace_event form on track tid.
func (e *event) jsonObject(tid int) map[string]any {
	obj := map[string]any{
		"name": e.name,
		"ph":   string(rune(e.ph)),
		"ts":   e.startS * 1e6,
		"pid":  0,
		"tid":  tid,
	}
	if e.cat != "" {
		obj["cat"] = e.cat
	}
	switch e.ph {
	case phaseComplete:
		obj["dur"] = e.durS * 1e6
	case phaseInstant:
		obj["s"] = "t" // thread-scoped instant
	}
	if n := int(e.nattr) + len(e.extra); n > 0 {
		args := make(map[string]any, n)
		for _, a := range e.attrs[:e.nattr] {
			args[a.Key] = a.value()
		}
		for _, a := range e.extra {
			args[a.Key] = a.value()
		}
		obj["args"] = args
	}
	return obj
}

// jsonObject renders one interned event in trace_event form on track tid.
func (e *fastEvent) jsonObject(tid int, d *spanDesc) map[string]any {
	obj := map[string]any{
		"name": d.name,
		"ph":   string(rune(e.ph)),
		"ts":   e.startS * 1e6,
		"pid":  0,
		"tid":  tid,
	}
	if d.cat != "" {
		obj["cat"] = d.cat
	}
	switch e.ph {
	case phaseComplete:
		obj["dur"] = e.durS * 1e6
	case phaseInstant:
		obj["s"] = "t"
	}
	if d.nkeys > 0 {
		args := make(map[string]any, d.nkeys)
		args[d.keys[0]] = e.v0
		if d.nkeys > 1 {
			args[d.keys[1]] = e.v1
		}
		obj["args"] = args
	}
	return obj
}

// WriteFile writes the Chrome trace JSON to path, atomically: a crash or
// kill mid-write never leaves a truncated trace behind.
func (t *Tracer) WriteFile(path string) error {
	if err := atomicio.WriteFile(path, t.WriteJSON); err != nil {
		return fmt.Errorf("telemetry: write trace: %w", err)
	}
	return nil
}
