package telemetry

import (
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestProfilerWritesProfiles(t *testing.T) {
	dir := t.TempDir()
	cpu := filepath.Join(dir, "cpu.pprof")
	heap := filepath.Join(dir, "heap.pprof")
	p, err := StartProfiler(cpu, heap)
	if err != nil {
		t.Fatal(err)
	}
	// Burn a little CPU so the profile has something to sample.
	x := 0.0
	DoLabeled(true, "pass", "momentum_energy", func() {
		for i := 0; i < 1e6; i++ {
			x += float64(i) * 1e-9
		}
	})
	_ = x
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
	for _, path := range []string{cpu, heap} {
		st, err := os.Stat(path)
		if err != nil {
			t.Fatalf("profile %s not written: %v", path, err)
		}
		if st.Size() == 0 {
			t.Errorf("profile %s is empty", path)
		}
	}
	// Idempotent close, nil safety.
	if err := p.Close(); err != nil {
		t.Errorf("second Close: %v", err)
	}
	var np *Profiler
	if err := np.Close(); err != nil {
		t.Errorf("nil Close: %v", err)
	}
}

func TestDoLabeledDisabledRunsFn(t *testing.T) {
	ran := false
	DoLabeled(false, "pass", "x", func() { ran = true })
	if !ran {
		t.Error("disabled DoLabeled skipped fn")
	}
}

func TestServeMetricsHealthzAndContentTypes(t *testing.T) {
	r := NewRegistry()
	r.Counter("steps_total", "").Add(3)
	srv, err := ServeMetrics("127.0.0.1:0", r)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	base := "http://" + srv.Addr

	resp, err := http.Get(base + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != 200 || strings.TrimSpace(string(body)) != "ok" {
		t.Errorf("/healthz = %d %q", resp.StatusCode, body)
	}

	// Browser-style Accept lists must still negotiate JSON.
	req, _ := http.NewRequest("GET", base+"/metrics", nil)
	req.Header.Set("Accept", "application/json, text/plain;q=0.9")
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	body, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "application/json") {
		t.Errorf("Accept-negotiated content type = %q", ct)
	}
	if !strings.Contains(string(body), `"steps_total"`) {
		t.Errorf("JSON body missing metric:\n%s", body)
	}

	resp, err = http.Get(base + "/metrics.json")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "application/json") {
		t.Errorf("/metrics.json content type = %q", ct)
	}

	// pprof index should be mounted on the same mux.
	resp, err = http.Get(base + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Errorf("/debug/pprof/ = %d", resp.StatusCode)
	}
}
