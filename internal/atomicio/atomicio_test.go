package atomicio

import (
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestWriteFileRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "out.json")
	if err := WriteFileBytes(path, []byte("hello")); err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "hello" {
		t.Fatalf("got %q", got)
	}
}

func TestWriteErrorLeavesTargetUntouched(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "out.json")
	if err := WriteFileBytes(path, []byte("original complete artifact")); err != nil {
		t.Fatal(err)
	}

	boom := errors.New("disk on fire")
	err := WriteFile(path, func(w io.Writer) error {
		// Partial write, then failure — the half-written temp must vanish.
		if _, werr := w.Write([]byte("new but trunc")); werr != nil {
			return werr
		}
		return boom
	})
	if !errors.Is(err, boom) {
		t.Fatalf("error not propagated: %v", err)
	}
	got, _ := os.ReadFile(path)
	if string(got) != "original complete artifact" {
		t.Fatalf("target damaged by failed write: %q", got)
	}
	ents, _ := os.ReadDir(dir)
	for _, e := range ents {
		if strings.Contains(e.Name(), ".tmp-") {
			t.Errorf("temp file leaked: %s", e.Name())
		}
	}
}

// TestKillMidWriteNeverTruncatesTarget is the kill-mid-write regression:
// for every byte-cut point of the new content it simulates a writer that
// died after writing exactly n bytes of its temp file (before the rename),
// and asserts the artifact under the final name is still the old complete
// file — the byte-by-byte cut technique of traceanalysis.LoadLenient
// applied to the write side.
func TestKillMidWriteNeverTruncatesTarget(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "trace.json")
	oldContent := `{"traceEvents":[{"name":"complete"}]}`
	if err := WriteFileBytes(path, []byte(oldContent)); err != nil {
		t.Fatal(err)
	}
	newContent := []byte(`{"traceEvents":[{"name":"next run, longer payload"}]}`)

	for n := 0; n <= len(newContent); n++ {
		// A writer killed mid-write leaves only a partial temp file; the
		// rename never happened.
		tmp, err := os.CreateTemp(dir, ".trace.json.tmp-*")
		if err != nil {
			t.Fatal(err)
		}
		if _, err := tmp.Write(newContent[:n]); err != nil {
			t.Fatal(err)
		}
		tmp.Close()

		got, err := os.ReadFile(path)
		if err != nil || string(got) != oldContent {
			t.Fatalf("cut at %d bytes: reader sees %q, %v", n, got, err)
		}
		os.Remove(tmp.Name())
	}
}

func TestWriteFileCreatesFreshTarget(t *testing.T) {
	path := filepath.Join(t.TempDir(), "sub", "x")
	if err := WriteFileBytes(path, []byte("x")); err == nil {
		t.Fatal("write into missing directory succeeded")
	} else if !strings.Contains(err.Error(), "atomicio") {
		t.Fatalf("unwrapped error: %v", err)
	}
	// Many targets in one dir: names must not collide.
	dir := t.TempDir()
	for i := 0; i < 5; i++ {
		p := filepath.Join(dir, "f")
		if err := WriteFileBytes(p, []byte(fmt.Sprint(i))); err != nil {
			t.Fatal(err)
		}
	}
	got, _ := os.ReadFile(filepath.Join(dir, "f"))
	if string(got) != "4" {
		t.Fatalf("last write lost: %q", got)
	}
}
