// Package atomicio provides crash-safe file writes: content goes to a
// temporary file in the destination directory, is fsynced, and is renamed
// over the target only after every byte is durably on disk. A process that
// dies mid-write therefore never leaves a truncated or half-written
// artifact under the final name — the reader either sees the old complete
// file or the new complete file. Every file-writing exit of the repo
// (traces, metrics, event ledgers, reports, checkpoints) funnels through
// WriteFile.
package atomicio

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
)

// WriteFile atomically replaces path with the bytes produced by write.
// The write callback receives a buffered writer backed by a temporary
// file created in path's directory; on success the temp file is synced,
// closed, and renamed over path. On any error (from write, sync, close,
// or rename) the temp file is removed and path is left untouched.
func WriteFile(path string, write func(w io.Writer) error) (err error) {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, "."+filepath.Base(path)+".tmp-*")
	if err != nil {
		return fmt.Errorf("atomicio: create temp for %s: %w", path, err)
	}
	tmpName := tmp.Name()
	defer func() {
		if err != nil {
			tmp.Close()
			os.Remove(tmpName)
		}
	}()
	if err = write(tmp); err != nil {
		return fmt.Errorf("atomicio: write %s: %w", path, err)
	}
	if err = tmp.Sync(); err != nil {
		return fmt.Errorf("atomicio: sync %s: %w", path, err)
	}
	if err = tmp.Close(); err != nil {
		return fmt.Errorf("atomicio: close %s: %w", path, err)
	}
	if err = os.Rename(tmpName, path); err != nil {
		return fmt.Errorf("atomicio: rename %s: %w", path, err)
	}
	syncDir(dir) // make the rename itself durable; best-effort on odd filesystems
	return nil
}

// WriteFileBytes is WriteFile for callers that already hold the content.
func WriteFileBytes(path string, data []byte) error {
	return WriteFile(path, func(w io.Writer) error {
		_, err := w.Write(data)
		return err
	})
}

// syncDir fsyncs a directory so a completed rename survives power loss.
// Errors are ignored: some filesystems reject directory fsync, and the
// rename has already happened — the write is complete either way.
func syncDir(dir string) {
	d, err := os.Open(dir)
	if err != nil {
		return
	}
	d.Sync()
	d.Close()
}
