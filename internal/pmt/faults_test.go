package pmt

import (
	"math"
	"testing"

	"sphenergy/internal/cluster"
	"sphenergy/internal/faults"
	"sphenergy/internal/gpusim"
	"sphenergy/internal/nvml"
	"sphenergy/internal/rapl"
	"sphenergy/internal/rsmi"
)

// scriptedHook fails reads according to a per-call script of errors.
func scriptedHook(script []error) func(op string, arg int) (int, error) {
	i := 0
	return func(op string, arg int) (int, error) {
		var err error
		if i < len(script) {
			err = script[i]
		}
		i++
		return arg, err
	}
}

func TestNVMLSensorDegradesUnderFaults(t *testing.T) {
	dev := gpusim.NewDevice(gpusim.A100SXM480GB(), 0)
	lib, _ := nvml.New([]*gpusim.Device{dev})
	lib.Init()
	h, _ := lib.DeviceGetHandleByIndex(0)
	s := NewNVML(h)

	good := s.Read() // healthy read primes the cache
	dev.Idle(1)

	lib.SetFaultHook(scriptedHook([]error{faults.ErrTransient, faults.ErrStuck, nil}))

	nan := s.Read()
	if !math.IsNaN(nan.EnergyJ) {
		t.Fatalf("transient fault: EnergyJ = %v, want NaN", nan.EnergyJ)
	}
	if nan.TimeS <= good.TimeS {
		t.Fatalf("transient fault should carry the current timestamp, got %v", nan.TimeS)
	}

	stuck := s.Read()
	if stuck != good {
		t.Fatalf("stuck fault: %+v, want replay of last good %+v", stuck, good)
	}

	rec := s.Read()
	if math.IsNaN(rec.EnergyJ) || rec.EnergyJ <= good.EnergyJ {
		t.Fatalf("recovered read = %+v, want fresh state past %+v", rec, good)
	}
}

func TestNVMLSensorStuckBeforeFirstGoodRead(t *testing.T) {
	dev := gpusim.NewDevice(gpusim.A100SXM480GB(), 0)
	lib, _ := nvml.New([]*gpusim.Device{dev})
	lib.Init()
	h, _ := lib.DeviceGetHandleByIndex(0)
	s := NewNVML(h)
	lib.SetFaultHook(scriptedHook([]error{faults.ErrStuck}))
	if st := s.Read(); !math.IsNaN(st.EnergyJ) {
		t.Fatalf("stuck with empty cache should be NaN, got %+v", st)
	}
}

func TestRSMISensorDegradesUnderFaults(t *testing.T) {
	dev := gpusim.NewDevice(gpusim.MI250XGCD(), 0)
	lib, _ := rsmi.New([]*gpusim.Device{dev})
	s := NewRSMI(lib, 0, dev)
	good := s.Read()
	dev.Idle(1)
	lib.SetFaultHook(scriptedHook([]error{faults.ErrStuck}))
	if st := s.Read(); st != good {
		t.Fatalf("stuck fault: %+v, want %+v", st, good)
	}
	lib.SetFaultHook(nil)
	if st := s.Read(); st.EnergyJ <= good.EnergyJ {
		t.Fatalf("recovery read %+v not past %+v", st, good)
	}
}

func TestRAPLSensorDegradesUnderFaults(t *testing.T) {
	cpu := &cluster.CPU{Model: cluster.CPUModel{IdleW: 100, MaxW: 200}}
	iface := rapl.New(cpu)
	rd, _ := iface.NewReader(0)
	s := NewRAPL(rd, cpu, 0)
	good := s.Read()
	cpu.Advance(1, 0.5)
	iface.SetFaultHook(scriptedHook([]error{faults.ErrTransient}))
	if st := s.Read(); !math.IsNaN(st.EnergyJ) {
		t.Fatalf("transient fault: %+v, want NaN energy", st)
	}
	iface.SetFaultHook(nil)
	st := s.Read()
	if math.IsNaN(st.EnergyJ) || math.Abs(st.EnergyJ-good.EnergyJ-150) > 0.01 {
		t.Fatalf("recovery read %+v, want ~150 J past %+v (no double counting)", st, good)
	}
}

func TestRSMIClockSetClampedByHook(t *testing.T) {
	dev := gpusim.NewDevice(gpusim.MI250XGCD(), 0)
	lib, _ := rsmi.New([]*gpusim.Device{dev})
	plan := &faults.Plan{Seed: 1, Rules: []faults.Rule{
		{Kind: faults.ClampedClock, Target: faults.TargetClock, MHz: 1000},
	}}
	lib.SetFaultHook(rsmi.FaultHook(plan.Injector(faults.TargetClock, 0).ClockHook(dev.Now)))
	table := dev.Spec().SupportedClocksMHz()
	// Pick the highest table entry; the hook clamps it to <=1000 and the
	// set must land on the nearest supported clock to the clamp.
	applied, err := lib.DevGPUClkFreqSet(0, 0)
	if err != nil {
		t.Fatalf("DevGPUClkFreqSet: %v", err)
	}
	if applied > table[0] && table[0] > 1000 {
		t.Fatalf("applied %d MHz despite 1000 MHz clamp", applied)
	}
	best, bestDiff := table[0], 1<<30
	for _, f := range table {
		d := f - 1000
		if d < 0 {
			d = -d
		}
		if d < bestDiff {
			best, bestDiff = f, d
		}
	}
	if table[0] > 1000 && applied != best {
		t.Fatalf("applied %d, want nearest supported to clamp = %d", applied, best)
	}
}
