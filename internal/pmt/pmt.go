// Package pmt reimplements the interface of the Power Measurement Toolkit
// (Corda, Veenboer & Tolley, HUST'22) over the simulated sensors: a common
// State/Read/Joules API with interchangeable back-ends for Nvidia GPUs
// (NVML), AMD GPUs (ROCm-SMI), CPUs (RAPL) and whole HPE/Cray nodes
// (pm_counters).
//
// Usage mirrors the real toolkit:
//
//	sensor, _ := pmt.Create(pmt.BackendNVML, ...)
//	start := sensor.Read()
//	... run the instrumented region ...
//	end := sensor.Read()
//	joules := pmt.Joules(start, end)
package pmt

import (
	"errors"
	"fmt"
	"math"

	"sphenergy/internal/cluster"
	"sphenergy/internal/faults"
	"sphenergy/internal/gpusim"
	"sphenergy/internal/nvml"
	"sphenergy/internal/pmcounters"
	"sphenergy/internal/rapl"
	"sphenergy/internal/rsmi"
)

// Backend identifies a PMT measurement back-end.
type Backend string

// Supported back-ends.
const (
	BackendNVML  Backend = "nvml"
	BackendRSMI  Backend = "rocm"
	BackendRAPL  Backend = "rapl"
	BackendCray  Backend = "cray"
	BackendDummy Backend = "dummy"
)

// State is one sensor sample: a (virtual) timestamp and cumulative energy,
// the pair PMT's Read() returns.
type State struct {
	TimeS   float64
	EnergyJ float64
}

// Joules returns the energy consumed between two states.
func Joules(start, end State) float64 { return end.EnergyJ - start.EnergyJ }

// Seconds returns the time elapsed between two states.
func Seconds(start, end State) float64 { return end.TimeS - start.TimeS }

// Watts returns the average power between two states, 0 for empty windows.
func Watts(start, end State) float64 {
	dt := Seconds(start, end)
	if dt <= 0 {
		return 0
	}
	return Joules(start, end) / dt
}

// Sensor is a PMT measurement source.
type Sensor interface {
	// Name identifies the sensor ("nvml:0", "rapl:pkg0", ...).
	Name() string
	// Read samples the sensor.
	Read() State
}

// Read() has no error return — exactly like the real toolkit — so
// back-end failures must be encoded in the State itself. The hardware
// sensors below do it uniformly via degrade: a stuck back-end replays the
// last good state (reader sees a frozen sample, the sampler's stuck
// detector catches the repetition), any other failure yields a NaN energy
// at the current timestamp (the sampler discards and counts it). A healthy
// read refreshes the cache.
func degrade(err error, now float64, last *State, started *bool) State {
	if errors.Is(err, faults.ErrStuck) && *started {
		return *last
	}
	return State{TimeS: now, EnergyJ: math.NaN()}
}

// backender is implemented by sensors that know their back-end; BackendOf
// falls back to BackendDummy for anything else.
type backender interface {
	Backend() Backend
}

// BackendOf reports the back-end a sensor measures through, BackendDummy
// when unknown. Callers use this to pick per-backend sampling rates.
func BackendOf(s Sensor) Backend {
	if b, ok := s.(backender); ok {
		return b.Backend()
	}
	return BackendDummy
}

// nvmlSensor measures one Nvidia device through the NVML energy counter.
type nvmlSensor struct {
	dev     nvml.Device
	last    State
	started bool
}

// NewNVML creates a GPU sensor over an NVML device handle.
func NewNVML(dev nvml.Device) Sensor { return &nvmlSensor{dev: dev} }

func (s *nvmlSensor) Name() string { return fmt.Sprintf("nvml:%s", s.dev.Name()) }

// Backend implements the back-end probe used by BackendOf.
func (s *nvmlSensor) Backend() Backend { return BackendNVML }

func (s *nvmlSensor) Read() State {
	now := s.dev.Sim().Now()
	mj, err := s.dev.TotalEnergyConsumption()
	if err != nil {
		return degrade(err, now, &s.last, &s.started)
	}
	s.last = State{TimeS: now, EnergyJ: float64(mj) / 1000}
	s.started = true
	return s.last
}

// rsmiSensor measures one AMD device through the ROCm-SMI energy counter.
type rsmiSensor struct {
	lib     *rsmi.Library
	idx     int
	dev     *gpusim.Device
	last    State
	started bool
}

// NewRSMI creates a GPU sensor over a rocm-smi device index. The underlying
// device is needed only for the virtual timestamp.
func NewRSMI(lib *rsmi.Library, idx int, dev *gpusim.Device) Sensor {
	return &rsmiSensor{lib: lib, idx: idx, dev: dev}
}

func (s *rsmiSensor) Name() string { return fmt.Sprintf("rocm:%d", s.idx) }

// Backend implements the back-end probe used by BackendOf.
func (s *rsmiSensor) Backend() Backend { return BackendRSMI }

func (s *rsmiSensor) Read() State {
	now := s.dev.Now()
	uj, err := s.lib.DevEnergyCountGet(s.idx)
	if err != nil {
		return degrade(err, now, &s.last, &s.started)
	}
	s.last = State{TimeS: now, EnergyJ: float64(uj) / 1e6}
	s.started = true
	return s.last
}

// raplSensor measures one CPU package through the RAPL counter.
type raplSensor struct {
	reader  *rapl.Reader
	cpu     *cluster.CPU
	pkg     int
	last    State
	started bool
}

// NewRAPL creates a CPU sensor over a RAPL reader; cpu provides the virtual
// timestamp of the package meter.
func NewRAPL(reader *rapl.Reader, cpu *cluster.CPU, pkg int) Sensor {
	return &raplSensor{reader: reader, cpu: cpu, pkg: pkg}
}

func (s *raplSensor) Name() string { return fmt.Sprintf("rapl:pkg%d", s.pkg) }

// Backend implements the back-end probe used by BackendOf.
func (s *raplSensor) Backend() Backend { return BackendRAPL }

func (s *raplSensor) Read() State {
	now := s.cpu.Meter.NowS()
	j, err := s.reader.Poll()
	if err != nil {
		return degrade(err, now, &s.last, &s.started)
	}
	s.last = State{TimeS: now, EnergyJ: j}
	s.started = true
	return s.last
}

// CrayComponent selects which pm_counters file a Cray sensor reads.
type CrayComponent string

// Cray components.
const (
	CrayNode   CrayComponent = "energy"
	CrayCPU    CrayComponent = "cpu_energy"
	CrayMemory CrayComponent = "memory_energy"
	CrayAccel  CrayComponent = "accel" // requires card index
)

// craySensor measures a node component through pm_counters.
type craySensor struct {
	pc        *pmcounters.Counters
	component CrayComponent
	card      int
	node      *cluster.Node
}

// NewCray creates a sensor over a node's pm_counters view. card selects the
// accelerator card for CrayAccel and is ignored otherwise.
func NewCray(node *cluster.Node, component CrayComponent, card int) Sensor {
	return NewCrayOn(pmcounters.New(node), node, component, card)
}

// NewCrayOn creates a sensor over an existing pm_counters view, so callers
// that need to install a fault hook (or share one Counters instance across
// components) can construct the view themselves.
func NewCrayOn(pc *pmcounters.Counters, node *cluster.Node, component CrayComponent, card int) Sensor {
	return &craySensor{pc: pc, component: component, card: card, node: node}
}

// Backend implements the back-end probe used by BackendOf.
func (s *craySensor) Backend() Backend { return BackendCray }

func (s *craySensor) Name() string {
	if s.component == CrayAccel {
		return fmt.Sprintf("cray:accel%d_energy", s.card)
	}
	return "cray:" + string(s.component)
}

func (s *craySensor) Read() State {
	var j float64
	switch s.component {
	case CrayNode:
		j = s.pc.Energy()
	case CrayCPU:
		j = s.pc.CPUEnergy()
	case CrayMemory:
		j = s.pc.MemoryEnergy()
	case CrayAccel:
		j, _ = s.pc.AccelEnergy(s.card)
	}
	return State{TimeS: s.node.Aux.NowS(), EnergyJ: j}
}

// Dummy is PMT's no-op backend for systems without any usable counters.
type Dummy struct{}

// Name implements Sensor.
func (Dummy) Name() string { return "dummy" }

// Read implements Sensor.
func (Dummy) Read() State { return State{} }

// Backend implements the back-end probe used by BackendOf.
func (Dummy) Backend() Backend { return BackendDummy }

// Multi aggregates several sensors into one (e.g. GPU + CPU for a rank's
// combined footprint). Timestamps take the furthest-advanced sensor.
type Multi struct {
	name    string
	sensors []Sensor
}

// NewMulti combines sensors under one name.
func NewMulti(name string, sensors ...Sensor) *Multi {
	return &Multi{name: name, sensors: sensors}
}

// Name implements Sensor.
func (m *Multi) Name() string { return m.name }

// Read implements Sensor.
func (m *Multi) Read() State {
	var out State
	for _, s := range m.sensors {
		st := s.Read()
		out.EnergyJ += st.EnergyJ
		if st.TimeS > out.TimeS {
			out.TimeS = st.TimeS
		}
	}
	return out
}
