package pmt

import (
	"math"
	"strings"
	"testing"

	"sphenergy/internal/cluster"
	"sphenergy/internal/gpusim"
	"sphenergy/internal/nvml"
	"sphenergy/internal/rapl"
	"sphenergy/internal/rsmi"
)

func TestStateArithmetic(t *testing.T) {
	start := State{TimeS: 1, EnergyJ: 100}
	end := State{TimeS: 3, EnergyJ: 500}
	if Joules(start, end) != 400 {
		t.Errorf("Joules = %v", Joules(start, end))
	}
	if Seconds(start, end) != 2 {
		t.Errorf("Seconds = %v", Seconds(start, end))
	}
	if Watts(start, end) != 200 {
		t.Errorf("Watts = %v", Watts(start, end))
	}
	if Watts(start, start) != 0 {
		t.Error("zero-window Watts should be 0")
	}
}

func TestNVMLBackend(t *testing.T) {
	dev := gpusim.NewDevice(gpusim.A100SXM480GB(), 0)
	lib, _ := nvml.New([]*gpusim.Device{dev})
	lib.Init()
	h, _ := lib.DeviceGetHandleByIndex(0)
	s := NewNVML(h)
	if !strings.HasPrefix(s.Name(), "nvml:") {
		t.Errorf("Name = %q", s.Name())
	}
	before := s.Read()
	dev.SetApplicationClocks(0, 1410)
	dev.Idle(2)
	after := s.Read()
	wantJ := dev.Spec().IdlePowerW * 2
	if math.Abs(Joules(before, after)-wantJ) > 1 {
		t.Errorf("measured %v J, want ~%v", Joules(before, after), wantJ)
	}
	if math.Abs(Seconds(before, after)-2) > 1e-9 {
		t.Errorf("measured %v s, want 2", Seconds(before, after))
	}
}

func TestRSMIBackend(t *testing.T) {
	dev := gpusim.NewDevice(gpusim.MI250XGCD(), 0)
	lib, _ := rsmi.New([]*gpusim.Device{dev})
	s := NewRSMI(lib, 0, dev)
	before := s.Read()
	dev.SetApplicationClocks(0, 1700)
	dev.Idle(1)
	after := s.Read()
	wantJ := dev.Spec().IdlePowerW
	if math.Abs(Joules(before, after)-wantJ) > 1 {
		t.Errorf("measured %v J, want ~%v", Joules(before, after), wantJ)
	}
}

func TestRAPLBackend(t *testing.T) {
	cpu := &cluster.CPU{Model: cluster.CPUModel{IdleW: 100, MaxW: 200}}
	iface := rapl.New(cpu)
	rd, _ := iface.NewReader(0)
	s := NewRAPL(rd, cpu, 0)
	before := s.Read()
	cpu.Advance(2, 0.5) // 2 s at 150 W
	after := s.Read()
	if math.Abs(Joules(before, after)-300) > 0.01 {
		t.Errorf("measured %v J, want 300", Joules(before, after))
	}
	if math.Abs(Watts(before, after)-150) > 0.1 {
		t.Errorf("measured %v W, want 150", Watts(before, after))
	}
}

func TestCrayBackends(t *testing.T) {
	node := cluster.NewNode(cluster.LUMIG(), 0)
	sensors := map[CrayComponent]Sensor{
		CrayNode:   NewCray(node, CrayNode, 0),
		CrayCPU:    NewCray(node, CrayCPU, 0),
		CrayMemory: NewCray(node, CrayMemory, 0),
		CrayAccel:  NewCray(node, CrayAccel, 1),
	}
	before := map[CrayComponent]State{}
	for c, s := range sensors {
		before[c] = s.Read()
	}
	for _, d := range node.Devices {
		d.Idle(1)
	}
	node.AdvanceHost(1, 0.5, 0.5)
	for c, s := range sensors {
		delta := Joules(before[c], s.Read())
		if delta <= 0 {
			t.Errorf("%s sensor measured %v J, want > 0", s.Name(), delta)
		}
		_ = c
	}
	// Accel sensor covers one card = 2 GCDs.
	accel := sensors[CrayAccel].Read()
	want := node.Devices[2].EnergyJ() + node.Devices[3].EnergyJ()
	if math.Abs(accel.EnergyJ-want) > 1e-6 {
		t.Errorf("accel1 sensor %v, want %v", accel.EnergyJ, want)
	}
}

func TestDummy(t *testing.T) {
	var d Dummy
	if d.Name() != "dummy" {
		t.Error("dummy name")
	}
	if s := d.Read(); s.EnergyJ != 0 || s.TimeS != 0 {
		t.Error("dummy should read zero")
	}
}

func TestMultiAggregates(t *testing.T) {
	devA := gpusim.NewDevice(gpusim.A100SXM480GB(), 0)
	devB := gpusim.NewDevice(gpusim.A100SXM480GB(), 1)
	libA, _ := nvml.New([]*gpusim.Device{devA})
	libA.Init()
	hA, _ := libA.DeviceGetHandleByIndex(0)
	libB, _ := nvml.New([]*gpusim.Device{devB})
	libB.Init()
	hB, _ := libB.DeviceGetHandleByIndex(0)
	m := NewMulti("pair", NewNVML(hA), NewNVML(hB))
	before := m.Read()
	devA.SetApplicationClocks(0, 1410)
	devB.SetApplicationClocks(0, 1410)
	devA.Idle(1)
	devB.Idle(3)
	after := m.Read()
	want := devA.Spec().IdlePowerW * 4
	if math.Abs(Joules(before, after)-want) > 1 {
		t.Errorf("multi measured %v J, want ~%v", Joules(before, after), want)
	}
	// Timestamp follows the furthest-advanced sensor.
	if math.Abs(after.TimeS-3) > 1e-9 {
		t.Errorf("multi time %v, want 3", after.TimeS)
	}
	if m.Name() != "pair" {
		t.Error("multi name")
	}
}

func TestSeriesSamplingAndStats(t *testing.T) {
	dev := gpusim.NewDevice(gpusim.A100PCIE40GB(), 0)
	lib, _ := nvml.New([]*gpusim.Device{dev})
	lib.Init()
	h, _ := lib.DeviceGetHandleByIndex(0)
	s := NewSeries(NewNVML(h))

	dev.SetApplicationClocks(0, 1410)
	dev.Idle(1) // idle power interval
	s.Sample()
	dev.Execute(gpusim.KernelDesc{Name: "k", Items: 50e6, FlopsPerItem: 30000, BytesPerItem: 600, EffFactor: 0.5})
	s.Sample()

	if s.Len() != 3 {
		t.Fatalf("%d samples", s.Len())
	}
	mean, min, max, ok := s.PowerStats()
	if !ok {
		t.Fatal("no stats")
	}
	idleW := dev.Spec().IdlePowerW
	if math.Abs(min-idleW) > 1 {
		t.Errorf("min power %v, want idle %v", min, idleW)
	}
	if max <= min || mean <= min || mean >= max {
		t.Errorf("stats ordering: mean %v min %v max %v", mean, min, max)
	}
	if s.TotalJoules() <= 0 || s.Duration() <= 0 {
		t.Error("totals empty")
	}
	if !strings.Contains(s.String(), "samples") {
		t.Errorf("String() = %q", s.String())
	}
	if len(s.States()) != 3 {
		t.Error("States copy wrong length")
	}
}

func TestSeriesDegenerate(t *testing.T) {
	s := NewSeries(Dummy{})
	if s.TotalJoules() != 0 || s.Duration() != 0 {
		t.Error("single-sample series should report zero totals")
	}
	if _, _, _, ok := s.PowerStats(); ok {
		t.Error("stats from a degenerate series")
	}
}
