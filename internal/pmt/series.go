package pmt

import (
	"fmt"
	"math"
	"strings"
)

// Series is PMT's sampling mode: periodic sensor reads collected into a
// power-over-time record (the real toolkit runs a sampling thread; here
// the instrumented application calls Sample at its hook points, since
// time is virtual).
type Series struct {
	sensor Sensor
	states []State
}

// NewSeries starts a series on a sensor with an initial sample.
func NewSeries(sensor Sensor) *Series {
	s := &Series{sensor: sensor}
	s.Sample()
	return s
}

// Sample reads the sensor and appends the state.
func (s *Series) Sample() State {
	st := s.sensor.Read()
	s.states = append(s.states, st)
	return st
}

// Len returns the number of samples.
func (s *Series) Len() int { return len(s.states) }

// States returns a copy of the samples.
func (s *Series) States() []State {
	out := make([]State, len(s.states))
	copy(out, s.states)
	return out
}

// TotalJoules returns the energy between the first and last sample.
func (s *Series) TotalJoules() float64 {
	if len(s.states) < 2 {
		return 0
	}
	return Joules(s.states[0], s.states[len(s.states)-1])
}

// Duration returns the time between the first and last sample.
func (s *Series) Duration() float64 {
	if len(s.states) < 2 {
		return 0
	}
	return Seconds(s.states[0], s.states[len(s.states)-1])
}

// PowerStats summarizes the interval powers between consecutive samples:
// mean, min and max watts. Empty intervals (no time advance) are skipped.
func (s *Series) PowerStats() (mean, min, max float64, ok bool) {
	min = math.Inf(1)
	var sumJ, sumS float64
	for i := 1; i < len(s.states); i++ {
		dt := Seconds(s.states[i-1], s.states[i])
		if dt <= 0 {
			continue
		}
		w := Joules(s.states[i-1], s.states[i]) / dt
		sumJ += w * dt
		sumS += dt
		if w < min {
			min = w
		}
		if w > max {
			max = w
		}
	}
	if sumS == 0 {
		return 0, 0, 0, false
	}
	return sumJ / sumS, min, max, true
}

// String summarizes the series.
func (s *Series) String() string {
	mean, min, max, ok := s.PowerStats()
	if !ok {
		return fmt.Sprintf("pmt series %q: %d samples, no interval data", s.sensor.Name(), len(s.states))
	}
	var b strings.Builder
	fmt.Fprintf(&b, "pmt series %q: %d samples over %.2f s, %.0f J",
		s.sensor.Name(), len(s.states), s.Duration(), s.TotalJoules())
	fmt.Fprintf(&b, " (power mean %.1f W, min %.1f W, max %.1f W)", mean, min, max)
	return b.String()
}
