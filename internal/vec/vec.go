// Package vec provides the small 3-component vector arithmetic used by the
// SPH solver and the gravity module.
//
// Vectors are value types; all operations return new values so expressions
// compose without aliasing surprises. The hot loops in internal/sph operate
// on structure-of-arrays particle storage and only use this package at
// per-interaction granularity, which the compiler inlines.
package vec

import (
	"fmt"
	"math"
)

// V3 is a three-component vector of float64.
type V3 struct {
	X, Y, Z float64
}

// New constructs a vector from its components.
func New(x, y, z float64) V3 { return V3{x, y, z} }

// Zero is the zero vector.
var Zero = V3{}

// Add returns v + w.
func (v V3) Add(w V3) V3 { return V3{v.X + w.X, v.Y + w.Y, v.Z + w.Z} }

// Sub returns v - w.
func (v V3) Sub(w V3) V3 { return V3{v.X - w.X, v.Y - w.Y, v.Z - w.Z} }

// Scale returns s·v.
func (v V3) Scale(s float64) V3 { return V3{s * v.X, s * v.Y, s * v.Z} }

// Neg returns -v.
func (v V3) Neg() V3 { return V3{-v.X, -v.Y, -v.Z} }

// Dot returns the scalar product v·w.
func (v V3) Dot(w V3) float64 { return v.X*w.X + v.Y*w.Y + v.Z*w.Z }

// Cross returns the vector product v×w.
func (v V3) Cross(w V3) V3 {
	return V3{
		v.Y*w.Z - v.Z*w.Y,
		v.Z*w.X - v.X*w.Z,
		v.X*w.Y - v.Y*w.X,
	}
}

// Norm2 returns |v|².
func (v V3) Norm2() float64 { return v.Dot(v) }

// Norm returns |v|.
func (v V3) Norm() float64 { return math.Sqrt(v.Norm2()) }

// Normalized returns v/|v|, or the zero vector if |v| == 0.
func (v V3) Normalized() V3 {
	n := v.Norm()
	if n == 0 {
		return Zero
	}
	return v.Scale(1 / n)
}

// Dist returns |v - w|.
func (v V3) Dist(w V3) float64 { return v.Sub(w).Norm() }

// Mul returns the component-wise product.
func (v V3) Mul(w V3) V3 { return V3{v.X * w.X, v.Y * w.Y, v.Z * w.Z} }

// Min returns the component-wise minimum.
func (v V3) Min(w V3) V3 {
	return V3{math.Min(v.X, w.X), math.Min(v.Y, w.Y), math.Min(v.Z, w.Z)}
}

// Max returns the component-wise maximum.
func (v V3) Max(w V3) V3 {
	return V3{math.Max(v.X, w.X), math.Max(v.Y, w.Y), math.Max(v.Z, w.Z)}
}

// IsFinite reports whether all components are finite numbers.
func (v V3) IsFinite() bool {
	return !math.IsNaN(v.X) && !math.IsInf(v.X, 0) &&
		!math.IsNaN(v.Y) && !math.IsInf(v.Y, 0) &&
		!math.IsNaN(v.Z) && !math.IsInf(v.Z, 0)
}

// String implements fmt.Stringer.
func (v V3) String() string { return fmt.Sprintf("(%g, %g, %g)", v.X, v.Y, v.Z) }
