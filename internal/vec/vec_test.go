package vec

import (
	"math"
	"testing"
	"testing/quick"
)

func almost(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestBasicAlgebra(t *testing.T) {
	a := New(1, 2, 3)
	b := New(4, -5, 6)
	if got := a.Add(b); got != New(5, -3, 9) {
		t.Errorf("Add = %v", got)
	}
	if got := a.Sub(b); got != New(-3, 7, -3) {
		t.Errorf("Sub = %v", got)
	}
	if got := a.Scale(2); got != New(2, 4, 6) {
		t.Errorf("Scale = %v", got)
	}
	if got := a.Dot(b); got != 4-10+18 {
		t.Errorf("Dot = %v", got)
	}
	if got := a.Neg(); got != New(-1, -2, -3) {
		t.Errorf("Neg = %v", got)
	}
}

func TestCrossProduct(t *testing.T) {
	x := New(1, 0, 0)
	y := New(0, 1, 0)
	if got := x.Cross(y); got != New(0, 0, 1) {
		t.Errorf("x cross y = %v, want z", got)
	}
	if got := y.Cross(x); got != New(0, 0, -1) {
		t.Errorf("y cross x = %v, want -z", got)
	}
}

func TestCrossOrthogonalProperty(t *testing.T) {
	f := func(ax, ay, az, bx, by, bz float64) bool {
		a, b := New(ax, ay, az), New(bx, by, bz)
		if !a.IsFinite() || !b.IsFinite() {
			return true
		}
		c := a.Cross(b)
		scale := a.Norm() * b.Norm()
		if scale == 0 || math.IsInf(scale, 0) {
			return true
		}
		return almost(c.Dot(a)/scale/(1+c.Norm()), 0, 1e-9) &&
			almost(c.Dot(b)/scale/(1+c.Norm()), 0, 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestNorm(t *testing.T) {
	v := New(3, 4, 0)
	if v.Norm() != 5 {
		t.Errorf("Norm = %v", v.Norm())
	}
	if v.Norm2() != 25 {
		t.Errorf("Norm2 = %v", v.Norm2())
	}
	n := v.Normalized()
	if !almost(n.Norm(), 1, 1e-15) {
		t.Errorf("Normalized().Norm() = %v", n.Norm())
	}
	if Zero.Normalized() != Zero {
		t.Error("normalizing zero should give zero")
	}
}

func TestDist(t *testing.T) {
	if d := New(1, 1, 1).Dist(New(1, 1, 2)); d != 1 {
		t.Errorf("Dist = %v", d)
	}
}

func TestMinMaxMul(t *testing.T) {
	a := New(1, 5, -2)
	b := New(3, 2, -4)
	if got := a.Min(b); got != New(1, 2, -4) {
		t.Errorf("Min = %v", got)
	}
	if got := a.Max(b); got != New(3, 5, -2) {
		t.Errorf("Max = %v", got)
	}
	if got := a.Mul(b); got != New(3, 10, 8) {
		t.Errorf("Mul = %v", got)
	}
}

func TestIsFinite(t *testing.T) {
	if !New(1, 2, 3).IsFinite() {
		t.Error("finite vector reported non-finite")
	}
	if New(math.NaN(), 0, 0).IsFinite() {
		t.Error("NaN vector reported finite")
	}
	if New(0, math.Inf(1), 0).IsFinite() {
		t.Error("Inf vector reported finite")
	}
}

func TestLagrangeIdentityProperty(t *testing.T) {
	// |a x b|^2 + (a.b)^2 == |a|^2 |b|^2
	f := func(ax, ay, az, bx, by, bz float64) bool {
		a, b := New(ax, ay, az), New(bx, by, bz)
		lhs := a.Cross(b).Norm2() + a.Dot(b)*a.Dot(b)
		rhs := a.Norm2() * b.Norm2()
		if math.IsInf(lhs, 0) || math.IsNaN(lhs) || rhs == 0 {
			return true
		}
		return almost(lhs/rhs, 1, 1e-9)
	}
	cfg := &quick.Config{MaxCount: 200}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestString(t *testing.T) {
	if got := New(1, 2.5, -3).String(); got != "(1, 2.5, -3)" {
		t.Errorf("String() = %q", got)
	}
}
