// Package sampler implements PMT's asynchronous sampling mode over the
// simulated sensors: a background sampler that observes any set of
// pmt.Sensors on fixed per-backend tick grids (100 Hz for the in-band GPU
// counters, 10 Hz for the out-of-band Cray/BMC node counters, mirroring the
// real toolkit's measurement threads).
//
// Time in the repository is virtual, so "background" means logically
// concurrent with the instrumented application: whenever the application's
// clock advances past a hook point, the owning goroutine calls
// Channel.Poll, and the channel emits every tick sample that became due
// since the previous poll. Cumulative energy at each tick is linearly
// interpolated between the bracketing sensor reads — exact whenever power
// is constant across the poll window (one kernel batch, one idle stretch),
// and carrying precisely the rate-dependent discretization error a real
// fixed-rate sampler would, which internal/attrib's error model quantifies.
//
// Channels keep their series in bounded ring buffers (old samples are
// dropped, not reallocated), accumulate energy overflow-safely (counter
// wraps and resets clamp to zero delta instead of going negative, and the
// running sum is Kahan-compensated), and track per-sensor staleness and
// jitter statistics. BindMetrics mirrors every channel into a telemetry
// registry as live power gauges and cumulative energy counters.
//
// # Degradation and failover
//
// Real sensors flake: reads fail transiently (surfacing here as NaN
// energy, see pmt), and counters go stale while time marches on (the
// pm_counters staleness of Simsek et al. §IV). Channels detect both —
// NaN reads are discarded and counted, and Config.StuckPolls consecutive
// reads with frozen energy mark the channel stuck — and degrade instead
// of corrupting the series: ticks covering the outage are estimated from
// a secondary sensor (SetSecondary) or from the last observed power, and
// carry Sample.Degraded so downstream attribution can exclude them from
// validation gates rather than silently trusting them. Estimates are
// kept on the primary counter's cumulative scale, so when the primary
// recovers, real energy reconciles against the estimate through the
// existing negative-delta clamp and nothing is double-counted.
package sampler

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"sync"

	"sphenergy/internal/pmt"
	"sphenergy/internal/telemetry"
)

// Default sampling rates, following the real PMT's per-backend defaults:
// in-band counters (NVML, ROCm-SMI, RAPL) sustain ~100 Hz; the out-of-band
// Cray pm_counters/BMC path collects at 10 Hz.
const (
	DefaultGPUHz  = 100
	DefaultNodeHz = 10
)

// DefaultRingCap bounds each channel's in-memory series. At 100 Hz this
// covers ~10 minutes of virtual time before the oldest samples rotate out.
const DefaultRingCap = 1 << 16

// Config configures the sampler. The zero value means "sampling off";
// setting either rate enables it (Defaulted fills the other).
type Config struct {
	// GPUHz is the tick rate for in-band per-device sensors (NVML/RSMI/RAPL).
	GPUHz float64
	// NodeHz is the tick rate for out-of-band node sensors (pm_counters).
	NodeHz float64
	// RingCap bounds each channel's sample buffer (DefaultRingCap when 0).
	RingCap int
	// StuckPolls is how many consecutive frozen-energy reads mark a
	// channel stuck (DefaultStuckPolls when 0). A read is "frozen" when
	// energy is bit-identical to the previous read and either no time
	// passed or at least a full sampling period did — sub-period
	// quantization (a 10 Hz pm_counters file re-read within one collection
	// window) is expected, not suspicious.
	StuckPolls int
}

// DefaultStuckPolls is the stuck-detector threshold: short natural
// repetition (double polls at phase boundaries) stays below it.
const DefaultStuckPolls = 3

// Enabled reports whether any sampling rate is configured.
func (c Config) Enabled() bool { return c.GPUHz > 0 || c.NodeHz > 0 }

// Defaulted fills unset fields of an enabled config.
func (c Config) Defaulted() Config {
	if !c.Enabled() {
		return c
	}
	if c.GPUHz <= 0 {
		c.GPUHz = DefaultGPUHz
	}
	if c.NodeHz <= 0 {
		c.NodeHz = DefaultNodeHz
	}
	if c.RingCap <= 0 {
		c.RingCap = DefaultRingCap
	}
	if c.StuckPolls <= 0 {
		c.StuckPolls = DefaultStuckPolls
	}
	return c
}

// RateFor returns the configured tick rate for a PMT back-end: node-level
// (Cray/BMC and the dummy fallback) sensors sample at NodeHz, everything
// in-band at GPUHz.
func (c Config) RateFor(b pmt.Backend) float64 {
	switch b {
	case pmt.BackendCray, pmt.BackendDummy:
		return c.NodeHz
	}
	return c.GPUHz
}

// Sample is one fixed-rate observation of a sensor.
type Sample struct {
	// TimeS is the tick's virtual time (an exact multiple of the period).
	TimeS float64
	// EnergyJ is the unwrapped cumulative energy since the channel started.
	EnergyJ float64
	// PowerW is the mean power over the tick interval ending at TimeS.
	PowerW float64
	// Degraded marks ticks whose energy is estimated (secondary source or
	// power model) rather than observed, plus the first recovered window:
	// downstream validation must not hold these to the observed-data gate.
	Degraded bool
}

// Stats summarizes a channel's sampling behaviour.
type Stats struct {
	Name   string
	Rank   int // -1 for node-level channels
	RateHz float64
	// Polls counts sensor reads; Ticks counts emitted grid samples.
	Polls, Ticks uint64
	// Dropped counts samples rotated out of the bounded ring.
	Dropped uint64
	// MaxPollGapS is the worst observed staleness: the longest stretch of
	// virtual time between two sensor reads (every tick inside such a gap
	// is interpolated, not observed).
	MaxPollGapS float64
	// GapJitterS is the standard deviation of the inter-poll gaps.
	GapJitterS float64
	// AccumJ is the overflow-safe cumulative energy since the first poll.
	AccumJ float64
	// LastTimeS is the sensor time of the most recent poll.
	LastTimeS float64
	// FaultReads counts discarded NaN reads (transient sensor failures).
	FaultReads uint64
	// StuckEvents counts transitions into the stuck state.
	StuckEvents uint64
	// Failovers counts polls served by the secondary sensor.
	Failovers uint64
	// DegradedTicks counts emitted samples flagged Degraded.
	DegradedTicks uint64
	// Degraded reports whether the channel is currently degraded.
	Degraded bool
}

// Channel samples one sensor on a fixed tick grid. A nil *Channel is a
// valid no-op, so call sites can poll unconditionally.
type Channel struct {
	mu sync.Mutex

	name      string
	rank      int
	sensor    pmt.Sensor
	secondary pmt.Sensor // optional failover source
	periodS   float64

	// ring buffer
	buf     []Sample
	head    int
	cap     int
	dropped uint64

	// accumulation state. last is the effective anchor for interpolation,
	// always on the primary counter's cumulative-energy scale — during a
	// degraded stretch it advances by estimated energy, and the primary's
	// next good read reconciles against it via the negative-delta clamp.
	started  bool
	last     pmt.State
	accumJ   float64
	kahanC   float64 // Kahan compensation for accumJ
	tick     int64   // next tick index; tick time = tick * periodS
	lastTick Sample  // most recent emitted sample

	// degradation state
	stuckPolls   int       // frozen-read threshold (from Config)
	lastRaw      pmt.State // previous non-NaN primary read, for stuck detection
	rawStarted   bool
	stuckRun     int  // consecutive frozen reads
	stuck        bool // currently latched stuck
	prevDegraded bool // previous poll was degraded (flags the recovery window)
	secLast      pmt.State
	secStarted   bool
	estMode      string         // how the last degraded read was estimated
	onTransition TransitionFunc // fired on degraded<->healthy edges (may be nil)

	// stats
	polls         uint64
	ticks         uint64
	maxGapS       float64
	gapSumS       float64
	gapSumSqS     float64
	faultReads    uint64
	stuckEvents   uint64
	failovers     uint64
	degradedTicks uint64

	// bound metrics (nil when unbound)
	mPower    *telemetry.Gauge
	mEnergy   *telemetry.Counter
	mTicks    *telemetry.Counter
	mDrops    *telemetry.Counter
	mDegraded *telemetry.Counter
	mGap      *telemetry.Histogram
}

// Name returns the channel's sensor label.
func (c *Channel) Name() string {
	if c == nil {
		return ""
	}
	return c.name
}

// Rank returns the MPI rank the channel is bound to, -1 for node channels.
func (c *Channel) Rank() int {
	if c == nil {
		return -1
	}
	return c.rank
}

// RateHz returns the channel's tick rate.
func (c *Channel) RateHz() float64 {
	if c == nil {
		return 0
	}
	return 1 / c.periodS
}

// SetSecondary installs a failover sensor consulted while the primary is
// degraded (e.g. the node's pm_counters accel file backing up NVML). Call
// before the first Poll.
func (c *Channel) SetSecondary(s pmt.Sensor) {
	if c == nil {
		return
	}
	c.mu.Lock()
	c.secondary = s
	c.mu.Unlock()
}

// classify updates the degradation detectors with a fresh primary read and
// reports whether this poll is degraded; caller holds c.mu.
func (c *Channel) classify(st pmt.State) bool {
	if math.IsNaN(st.EnergyJ) || math.IsNaN(st.TimeS) {
		c.faultReads++
		return true
	}
	// Frozen read: energy bit-identical to the previous read while either
	// no time passed (a stuck sensor replaying its cache) or at least one
	// full period did (a stalled collection loop). Energy repetition
	// within a fraction of a period is ordinary quantization.
	frozen := c.rawStarted && st.EnergyJ == c.lastRaw.EnergyJ &&
		(st.TimeS == c.lastRaw.TimeS || st.TimeS-c.lastRaw.TimeS >= c.periodS*(1-1e-9))
	if frozen {
		c.stuckRun++
	} else if !c.rawStarted || st.EnergyJ != c.lastRaw.EnergyJ {
		c.stuckRun = 0
		c.stuck = false
	}
	c.lastRaw = st
	c.rawStarted = true
	threshold := c.stuckPolls
	if threshold <= 0 {
		threshold = DefaultStuckPolls
	}
	if c.stuckRun >= threshold && !c.stuck {
		c.stuck = true
		c.stuckEvents++
	}
	return c.stuck
}

// estimate substitutes a degraded primary read with an effective state on
// the primary's cumulative-energy scale: the secondary sensor's energy
// delta when one is configured and answering, otherwise an extrapolation
// of the last observed tick power; caller holds c.mu.
func (c *Channel) estimate(raw pmt.State) pmt.State {
	c.estMode = "model-extrapolation"
	if c.secondary != nil {
		sec := c.secondary.Read()
		if !math.IsNaN(sec.EnergyJ) && !math.IsNaN(sec.TimeS) {
			c.estMode = "secondary-failover"
			c.failovers++
			if !c.secStarted {
				c.secStarted = true
				c.secLast = sec
				return pmt.State{TimeS: sec.TimeS, EnergyJ: c.last.EnergyJ}
			}
			d := sec.EnergyJ - c.secLast.EnergyJ
			if d < 0 {
				d = 0
			}
			c.secLast = sec
			return pmt.State{TimeS: sec.TimeS, EnergyJ: c.last.EnergyJ + d}
		}
	}
	now := raw.TimeS
	if math.IsNaN(now) || now < c.last.TimeS {
		now = c.last.TimeS
	}
	return pmt.State{TimeS: now, EnergyJ: c.last.EnergyJ + c.lastTick.PowerW*(now-c.last.TimeS)}
}

// Poll reads the sensor and emits every tick sample due since the previous
// poll, interpolating cumulative energy between the two reads. The first
// poll establishes the energy baseline. Degraded reads (NaN, stuck) are
// replaced by estimates and the covered ticks flagged — see the package
// comment. Safe to call from the goroutine driving the sensor's device;
// distinct channels never share state.
func (c *Channel) Poll() {
	if c == nil {
		return
	}
	st := c.sensor.Read()
	c.mu.Lock()
	c.polls++
	degraded := c.classify(st)
	if !c.started {
		if degraded {
			// No baseline to anchor an estimate to yet; wait for the
			// first good read.
			c.mu.Unlock()
			return
		}
		c.started = true
		c.last = st
		// First tick at the first grid point at or after the baseline.
		c.tick = int64(math.Ceil(st.TimeS/c.periodS - 1e-9))
		c.lastTick = Sample{TimeS: st.TimeS}
		c.mu.Unlock()
		return
	}
	if degraded {
		st = c.estimate(st)
	}
	// The first good poll after an outage also carries the flag: its ticks
	// span the unobserved window.
	transition := degraded != c.prevDegraded
	flag := degraded || c.prevDegraded
	c.prevDegraded = degraded
	if transition && c.onTransition != nil {
		detail := "primary-restored"
		if degraded {
			detail = c.estMode
		}
		c.onTransition(c.name, c.rank, degraded, detail)
	}
	gap := st.TimeS - c.last.TimeS
	if gap < 0 {
		// Sensor time went backwards (should not happen); resynchronize.
		c.last = st
		c.mu.Unlock()
		return
	}
	deltaJ := st.EnergyJ - c.last.EnergyJ
	if deltaJ < 0 {
		// Counter wrap or reset: clamp to zero rather than accumulating a
		// negative delta — the overflow-safe contract.
		deltaJ = 0
	}
	if gap > 0 {
		if gap > c.maxGapS {
			c.maxGapS = gap
		}
		c.gapSumS += gap
		c.gapSumSqS += gap * gap
	}
	// Emit every tick in (last.TimeS, st.TimeS].
	startAccum := c.accumJ
	ticksBefore, dropsBefore := c.ticks, c.dropped
	degradedBefore := c.degradedTicks
	for {
		tickT := float64(c.tick) * c.periodS
		if tickT > st.TimeS+1e-12 {
			break
		}
		frac := 1.0
		if gap > 0 {
			frac = (tickT - c.last.TimeS) / gap
			if frac < 0 {
				frac = 0
			} else if frac > 1 {
				frac = 1
			}
		}
		e := startAccum + deltaJ*frac
		p := 0.0
		if dt := tickT - c.lastTick.TimeS; dt > 0 {
			p = (e - c.lastTick.EnergyJ) / dt
		}
		s := Sample{TimeS: tickT, EnergyJ: e, PowerW: p, Degraded: flag}
		if flag {
			c.degradedTicks++
		}
		c.push(s)
		c.lastTick = s
		c.ticks++
		c.tick++
	}
	c.kahanAdd(deltaJ)
	c.last = st
	mPower, mEnergy, mTicks, mDrops, mDegraded, mGap :=
		c.mPower, c.mEnergy, c.mTicks, c.mDrops, c.mDegraded, c.mGap
	meanW := 0.0
	if gap > 0 {
		meanW = deltaJ / gap
	}
	newTicks, newDrops := c.ticks-ticksBefore, c.dropped-dropsBefore
	newDegraded := c.degradedTicks - degradedBefore
	c.mu.Unlock()

	// Metric updates run outside the channel lock; gauges/counters are
	// atomic and nil-safe.
	if gap > 0 {
		mPower.Set(meanW)
		// Poll-gap distribution: the jitter view of the Stats mean/stddev
		// summary, with p50/p95/p99 on the exposition endpoints.
		mGap.Observe(gap)
	}
	mEnergy.Add(deltaJ)
	mTicks.Add(float64(newTicks))
	mDrops.Add(float64(newDrops))
	mDegraded.Add(float64(newDegraded))
}

// kahanAdd accumulates deltaJ into accumJ with Kahan compensation, keeping
// the cumulative sum accurate over millions of small tick deltas; caller
// holds c.mu.
func (c *Channel) kahanAdd(deltaJ float64) {
	y := deltaJ - c.kahanC
	t := c.accumJ + y
	c.kahanC = (t - c.accumJ) - y
	c.accumJ = t
}

// push appends one sample to the bounded ring; caller holds c.mu.
func (c *Channel) push(s Sample) {
	if len(c.buf) < c.cap {
		c.buf = append(c.buf, s)
		return
	}
	c.buf[c.head] = s
	c.head = (c.head + 1) % len(c.buf)
	c.dropped++
}

// Samples returns the retained series in time order.
func (c *Channel) Samples() []Sample {
	if c == nil {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]Sample, 0, len(c.buf))
	out = append(out, c.buf[c.head:]...)
	out = append(out, c.buf[:c.head]...)
	return out
}

// AccumJ returns the overflow-safe cumulative energy since the first poll.
func (c *Channel) AccumJ() float64 {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.accumJ
}

// Stats returns the channel's sampling statistics.
func (c *Channel) Stats() Stats {
	if c == nil {
		return Stats{Rank: -1}
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	st := Stats{
		Name:          c.name,
		Rank:          c.rank,
		RateHz:        1 / c.periodS,
		Polls:         c.polls,
		Ticks:         c.ticks,
		Dropped:       c.dropped,
		MaxPollGapS:   c.maxGapS,
		AccumJ:        c.accumJ,
		LastTimeS:     c.last.TimeS,
		FaultReads:    c.faultReads,
		StuckEvents:   c.stuckEvents,
		Failovers:     c.failovers,
		DegradedTicks: c.degradedTicks,
		Degraded:      c.stuck || c.prevDegraded,
	}
	if n := float64(c.polls - 1); n > 1 {
		mean := c.gapSumS / n
		varS := c.gapSumSqS/n - mean*mean
		if varS > 0 {
			st.GapJitterS = math.Sqrt(varS)
		}
	}
	return st
}

// bind wires the channel's metrics; caller holds the sampler lock.
func (c *Channel) bind(reg *telemetry.Registry) {
	labels := []telemetry.Label{telemetry.L("sensor", c.name)}
	if c.rank >= 0 {
		labels = append(labels, telemetry.L("rank", strconv.Itoa(c.rank)))
	}
	c.mu.Lock()
	c.mPower = reg.Gauge("sampled_power_w",
		"instantaneous power observed by the async sampler", labels...)
	c.mEnergy = reg.Counter("sampled_energy_j_total",
		"cumulative energy accumulated by the async sampler", labels...)
	c.mTicks = reg.Counter("sampler_ticks_total",
		"fixed-rate samples emitted per sensor", labels...)
	c.mDrops = reg.Counter("sampler_dropped_total",
		"samples rotated out of the bounded ring per sensor", labels...)
	c.mDegraded = reg.Counter("sampler_degraded_ticks_total",
		"samples estimated under sensor degradation per sensor", labels...)
	c.mGap = reg.Histogram("sampler_poll_gap_s",
		"virtual-time gap between consecutive sensor polls (staleness/jitter)",
		telemetry.LatencyBuckets(), labels...)
	c.mu.Unlock()
}

// TransitionFunc observes a channel crossing a degradation edge: degraded
// is true when the channel just lost its primary (detail names the
// estimation mode — "secondary-failover" or "model-extrapolation") and
// false when the primary came back ("primary-restored"). The callback runs
// under the channel's mutex on the polling goroutine, so it must be cheap
// and must not re-enter the channel.
type TransitionFunc func(name string, rank int, degraded bool, detail string)

// Sampler owns a set of channels. A nil *Sampler is a valid no-op.
type Sampler struct {
	mu       sync.Mutex
	cfg      Config
	channels []*Channel
	reg      *telemetry.Registry
	onTrans  TransitionFunc
}

// SetTransitionSink installs a callback fired whenever a channel enters or
// leaves degradation. Only channels added after the call observe it; set
// the sink before AddRank/AddNode.
func (s *Sampler) SetTransitionSink(fn TransitionFunc) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.onTrans = fn
	s.mu.Unlock()
}

// New creates a sampler with the given (defaulted) config.
func New(cfg Config) *Sampler {
	return &Sampler{cfg: cfg.Defaulted()}
}

// Config returns the sampler's effective configuration.
func (s *Sampler) Config() Config {
	if s == nil {
		return Config{}
	}
	return s.cfg
}

// Add registers a sensor under an explicit name, rank (use -1 for
// node-level sensors) and rate; hz <= 0 selects the backend default via
// Config.RateFor. Returns the new channel.
func (s *Sampler) Add(name string, rank int, sensor pmt.Sensor, hz float64) *Channel {
	if s == nil {
		return nil
	}
	if hz <= 0 {
		hz = s.cfg.RateFor(pmt.BackendOf(sensor))
	}
	if hz <= 0 {
		hz = DefaultNodeHz
	}
	s.mu.Lock()
	onTrans := s.onTrans
	s.mu.Unlock()
	ch := &Channel{
		name:         name,
		rank:         rank,
		sensor:       sensor,
		periodS:      1 / hz,
		cap:          s.cfg.RingCap,
		stuckPolls:   s.cfg.StuckPolls,
		onTransition: onTrans,
	}
	s.mu.Lock()
	s.channels = append(s.channels, ch)
	reg := s.reg
	s.mu.Unlock()
	if reg != nil {
		ch.bind(reg)
	}
	return ch
}

// AddRank registers a rank's GPU sensor at the backend default rate, named
// after the sensor.
func (s *Sampler) AddRank(rank int, sensor pmt.Sensor) *Channel {
	if s == nil {
		return nil
	}
	return s.Add(fmt.Sprintf("rank%d:%s", rank, sensor.Name()), rank, sensor, 0)
}

// AddNode registers a node-level sensor at the node rate.
func (s *Sampler) AddNode(node int, sensor pmt.Sensor) *Channel {
	if s == nil {
		return nil
	}
	return s.Add(fmt.Sprintf("node%d:%s", node, sensor.Name()), -1, sensor, s.cfg.NodeHz)
}

// BindMetrics mirrors every channel (and all later-added ones) into the
// registry: sampled_power_w gauges, sampled_energy_j_total counters, and
// the sampler's own tick/drop counters.
func (s *Sampler) BindMetrics(reg *telemetry.Registry) {
	if s == nil || reg == nil {
		return
	}
	s.mu.Lock()
	s.reg = reg
	chs := append([]*Channel(nil), s.channels...)
	s.mu.Unlock()
	for _, ch := range chs {
		ch.bind(reg)
	}
}

// Channels returns all registered channels.
func (s *Sampler) Channels() []*Channel {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]*Channel(nil), s.channels...)
}

// PollAll polls every channel (run start, setup end, final flush).
func (s *Sampler) PollAll() {
	for _, ch := range s.Channels() {
		ch.Poll()
	}
}

// PollNodes polls the node-level channels only; the coordinator calls this
// at phase boundaries while rank channels poll from their own goroutines.
func (s *Sampler) PollNodes() {
	for _, ch := range s.Channels() {
		if ch.rank < 0 {
			ch.Poll()
		}
	}
}

// RankSeries returns each rank's sampled series, merging multiple channels
// of the same rank in time order (the join input for internal/attrib).
func (s *Sampler) RankSeries() map[int][]Sample {
	out := map[int][]Sample{}
	for _, ch := range s.Channels() {
		if ch.rank < 0 {
			continue
		}
		out[ch.rank] = append(out[ch.rank], ch.Samples()...)
	}
	for r := range out {
		sort.Slice(out[r], func(a, b int) bool { return out[r][a].TimeS < out[r][b].TimeS })
	}
	return out
}

// NodeAccumJ sums the cumulative sampled energy of all node-level channels
// — the "sampled sensors" reading of the three-way validation.
func (s *Sampler) NodeAccumJ() float64 {
	total := 0.0
	for _, ch := range s.Channels() {
		if ch.rank < 0 {
			total += ch.AccumJ()
		}
	}
	return total
}

// RankAccumJ sums the cumulative sampled energy of all rank channels.
func (s *Sampler) RankAccumJ() float64 {
	total := 0.0
	for _, ch := range s.Channels() {
		if ch.rank >= 0 {
			total += ch.AccumJ()
		}
	}
	return total
}

// Degraded reports whether any channel saw sensor degradation during the
// run (failed reads, stuck stretches, or estimated ticks).
func (s *Sampler) Degraded() bool {
	for _, ch := range s.Channels() {
		st := ch.Stats()
		if st.Degraded || st.DegradedTicks > 0 || st.FaultReads > 0 || st.StuckEvents > 0 {
			return true
		}
	}
	return false
}

// Stats returns per-channel statistics in registration order.
func (s *Sampler) Stats() []Stats {
	chs := s.Channels()
	out := make([]Stats, len(chs))
	for i, ch := range chs {
		out[i] = ch.Stats()
	}
	return out
}
