package sampler

import (
	"math"
	"testing"

	"sphenergy/internal/pmt"
)

type transitionRec struct {
	name     string
	rank     int
	degraded bool
	detail   string
}

// TestTransitionSinkFiresOnEdges verifies the sink observes exactly the
// degraded/recovered edges — not every degraded poll — with the estimation
// mode in the detail.
func TestTransitionSinkFiresOnEdges(t *testing.T) {
	// Good, good, NaN, NaN, good: one degraded edge, one recovery edge.
	sen := &nanAt{scriptSensor: scriptSensor{name: "fake", states: []pmt.State{
		{TimeS: 0, EnergyJ: 0},
		{TimeS: 0.1, EnergyJ: 10},
		{TimeS: 0.2, EnergyJ: 20},
		{TimeS: 0.3, EnergyJ: 30},
		{TimeS: 0.4, EnergyJ: 40},
	}}, bad: map[int]bool{2: true, 3: true}}
	s := New(Config{GPUHz: 10})
	var got []transitionRec
	s.SetTransitionSink(func(name string, rank int, degraded bool, detail string) {
		got = append(got, transitionRec{name, rank, degraded, detail})
	})
	ch := s.Add("fake", 3, sen, 10)
	for i := 0; i < 5; i++ {
		ch.Poll()
	}
	want := []transitionRec{
		{"fake", 3, true, "model-extrapolation"},
		{"fake", 3, false, "primary-restored"},
	}
	if len(got) != len(want) {
		t.Fatalf("transitions = %+v, want %+v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("transition %d = %+v, want %+v", i, got[i], want[i])
		}
	}
}

// TestTransitionSinkReportsSecondaryFailover checks the detail names the
// secondary source when one answers during the outage.
func TestTransitionSinkReportsSecondaryFailover(t *testing.T) {
	primary := &nanAt{scriptSensor: scriptSensor{name: "prim", states: []pmt.State{
		{TimeS: 0, EnergyJ: 0},
		{TimeS: 0.1, EnergyJ: 10},
		{TimeS: 0.2, EnergyJ: 20},
	}}, bad: map[int]bool{2: true}}
	secondary := &scriptSensor{name: "sec", states: []pmt.State{
		{TimeS: 0.2, EnergyJ: 5},
	}}
	s := New(Config{GPUHz: 10})
	var got []transitionRec
	s.SetTransitionSink(func(name string, rank int, degraded bool, detail string) {
		got = append(got, transitionRec{name, rank, degraded, detail})
	})
	ch := s.Add("prim", 0, primary, 10)
	ch.SetSecondary(secondary)
	for i := 0; i < 3; i++ {
		ch.Poll()
	}
	if len(got) != 1 || !got[0].degraded || got[0].detail != "secondary-failover" {
		t.Fatalf("transitions = %+v, want one degraded edge via secondary-failover", got)
	}
}

// TestTransitionSinkSilentWithoutEdges: a fully healthy run must never fire.
func TestTransitionSinkSilentWithoutEdges(t *testing.T) {
	sen := &scriptSensor{name: "fake", states: []pmt.State{
		{TimeS: 0, EnergyJ: 0},
		{TimeS: 0.1, EnergyJ: 10},
		{TimeS: 0.2, EnergyJ: 20},
	}}
	s := New(Config{GPUHz: 10})
	fired := 0
	s.SetTransitionSink(func(string, int, bool, string) { fired++ })
	ch := s.Add("fake", 0, sen, 10)
	for i := 0; i < 3; i++ {
		ch.Poll()
	}
	if fired != 0 {
		t.Fatalf("sink fired %d times on a healthy channel", fired)
	}
	// And a NaN before the baseline is established must not fire either:
	// there is no healthy state to transition from.
	sen2 := &nanAt{scriptSensor: scriptSensor{name: "f2", states: []pmt.State{
		{TimeS: 0, EnergyJ: math.NaN()},
		{TimeS: 0.1, EnergyJ: 10},
		{TimeS: 0.2, EnergyJ: 20},
	}}, bad: map[int]bool{0: true}}
	ch2 := s.Add("f2", 0, sen2, 10)
	for i := 0; i < 3; i++ {
		ch2.Poll()
	}
	if fired != 0 {
		t.Fatalf("sink fired %d times before the baseline existed", fired)
	}
}
