package sampler

import (
	"math"
	"testing"

	"sphenergy/internal/pmt"
)

// nanAt replays states but substitutes NaN energy at the given indices,
// modelling a transiently failing sensor.
type nanAt struct {
	scriptSensor
	bad map[int]bool
}

func (s *nanAt) Read() pmt.State {
	i := s.i
	st := s.scriptSensor.Read()
	if s.bad[i] {
		return pmt.State{TimeS: st.TimeS, EnergyJ: math.NaN()}
	}
	return st
}

func TestNaNReadsDiscardedAndFlagged(t *testing.T) {
	// 100 W throughout; poll 2 (t=0.2) fails. The outage and recovery
	// ticks are flagged, and total energy is reconciled exactly on the
	// next good read.
	sen := &nanAt{scriptSensor: scriptSensor{name: "fake", states: []pmt.State{
		{TimeS: 0, EnergyJ: 0},
		{TimeS: 0.1, EnergyJ: 10},
		{TimeS: 0.2, EnergyJ: 20},
		{TimeS: 0.3, EnergyJ: 30},
	}}, bad: map[int]bool{2: true}}
	s := New(Config{GPUHz: 10})
	ch := s.Add("fake", 0, sen, 10)
	for i := 0; i < 4; i++ {
		ch.Poll()
	}
	st := ch.Stats()
	if st.FaultReads != 1 {
		t.Fatalf("FaultReads = %d, want 1", st.FaultReads)
	}
	if !approx(st.AccumJ, 30, 1e-9) {
		t.Fatalf("AccumJ = %g, want 30 (no double counting across the outage)", st.AccumJ)
	}
	var flagged []float64
	for _, smp := range ch.Samples() {
		if smp.Degraded {
			flagged = append(flagged, smp.TimeS)
		}
	}
	// The NaN poll covers the tick at 0.2 (estimated), the recovery poll
	// covers 0.3.
	if len(flagged) != 2 || !approx(flagged[0], 0.2, 1e-9) || !approx(flagged[1], 0.3, 1e-9) {
		t.Fatalf("degraded ticks at %v, want [0.2 0.3]", flagged)
	}
	if st.DegradedTicks != 2 {
		t.Fatalf("DegradedTicks = %d, want 2", st.DegradedTicks)
	}
}

func TestModelEstimateExtrapolatesLastPower(t *testing.T) {
	// 100 W observed, then the sensor dies for good: estimates continue at
	// the last observed tick power.
	states := []pmt.State{
		{TimeS: 0, EnergyJ: 0},
		{TimeS: 0.1, EnergyJ: 10},
	}
	for i := 0; i < 3; i++ {
		states = append(states, pmt.State{TimeS: 0.2 + 0.1*float64(i), EnergyJ: math.NaN()})
	}
	sen := &scriptSensor{name: "fake", states: states}
	s := New(Config{GPUHz: 10})
	ch := s.Add("fake", 0, sen, 10)
	for range states {
		ch.Poll()
	}
	smps := ch.Samples()
	last := smps[len(smps)-1]
	if !last.Degraded {
		t.Fatal("estimated tail not flagged")
	}
	if !approx(last.TimeS, 0.4, 1e-9) || !approx(last.EnergyJ, 40, 1e-6) {
		t.Fatalf("model tail = %+v, want 100 W extrapolation to (0.4, 40)", last)
	}
}

func TestStuckDetectionLatchesAndRecovers(t *testing.T) {
	// Energy freezes at 10 J for 4 polls while time advances a full period
	// each — a stalled collection loop — then recovers with the true
	// cumulative count.
	sen := &scriptSensor{name: "fake", states: []pmt.State{
		{TimeS: 0, EnergyJ: 0},
		{TimeS: 0.1, EnergyJ: 10},
		{TimeS: 0.2, EnergyJ: 10},
		{TimeS: 0.3, EnergyJ: 10},
		{TimeS: 0.4, EnergyJ: 10},
		{TimeS: 0.5, EnergyJ: 10},
		{TimeS: 0.6, EnergyJ: 60},
	}}
	s := New(Config{GPUHz: 10, StuckPolls: 3})
	ch := s.Add("fake", 0, sen, 10)
	for i := 0; i < 7; i++ {
		ch.Poll()
	}
	st := ch.Stats()
	if st.StuckEvents != 1 {
		t.Fatalf("StuckEvents = %d, want 1", st.StuckEvents)
	}
	if st.Degraded {
		t.Fatal("channel still degraded after recovery")
	}
	// True energy 60 J; the frozen stretch contributed zero observed delta
	// and the recovery read reconciles the whole outage.
	if !approx(st.AccumJ, 60, 1e-9) {
		t.Fatalf("AccumJ = %g, want 60", st.AccumJ)
	}
	var flagged int
	for _, smp := range ch.Samples() {
		if smp.Degraded {
			flagged++
		}
	}
	if flagged == 0 {
		t.Fatal("no ticks flagged across the stuck stretch")
	}
}

func TestStuckNotTriggeredByQuantization(t *testing.T) {
	// A 10 Hz-quantized counter re-read several times within one collection
	// window repeats energy with sub-period time advances — expected
	// behaviour, not a fault.
	sen := &scriptSensor{name: "fake", states: []pmt.State{
		{TimeS: 0, EnergyJ: 0},
		{TimeS: 0.02, EnergyJ: 0},
		{TimeS: 0.04, EnergyJ: 0},
		{TimeS: 0.06, EnergyJ: 0},
		{TimeS: 0.08, EnergyJ: 0},
		{TimeS: 0.12, EnergyJ: 12},
	}}
	s := New(Config{NodeHz: 10, StuckPolls: 3})
	ch := s.Add("fake", -1, sen, 10)
	for i := 0; i < 6; i++ {
		ch.Poll()
	}
	st := ch.Stats()
	if st.StuckEvents != 0 || st.DegradedTicks != 0 {
		t.Fatalf("quantized repetition misdetected as stuck: %+v", st)
	}
}

func TestSecondaryFailoverCreditsEnergy(t *testing.T) {
	// Primary freezes entirely (time and energy) for 3 polls; a healthy
	// secondary covers the outage. On primary recovery the cumulative
	// total must reconcile to the primary's counter, not primary+credit.
	primary := &scriptSensor{name: "prim", states: []pmt.State{
		{TimeS: 0, EnergyJ: 0},
		{TimeS: 0.1, EnergyJ: 10},
		{TimeS: 0.1, EnergyJ: 10}, // frozen
		{TimeS: 0.1, EnergyJ: 10},
		{TimeS: 0.1, EnergyJ: 10},
		{TimeS: 0.1, EnergyJ: 10},
		{TimeS: 0.6, EnergyJ: 60}, // recovered
	}}
	secondary := &scriptSensor{name: "sec", states: []pmt.State{
		{TimeS: 0.2, EnergyJ: 100},
		{TimeS: 0.3, EnergyJ: 111}, // ~110 W view of the same hardware
		{TimeS: 0.4, EnergyJ: 122},
	}}
	s := New(Config{GPUHz: 10, StuckPolls: 2})
	ch := s.Add("prim", 0, primary, 10)
	ch.SetSecondary(secondary)
	for i := 0; i < 7; i++ {
		ch.Poll()
	}
	st := ch.Stats()
	if st.Failovers == 0 {
		t.Fatal("secondary never consulted")
	}
	// Primary's true total is 60 J. During the outage the secondary
	// credited ~22 J on top of the 10 J baseline; the recovery read (60 J
	// cumulative) reconciles the remainder, so the total is exactly 60.
	if !approx(st.AccumJ, 60, 1e-9) {
		t.Fatalf("AccumJ = %g, want 60 (secondary credit reconciled)", st.AccumJ)
	}
	degraded := 0
	for _, smp := range ch.Samples() {
		if smp.Degraded {
			degraded++
		}
	}
	if degraded == 0 {
		t.Fatal("failover ticks not flagged")
	}
}

func TestSecondaryCreditExceedingPrimaryClamps(t *testing.T) {
	// If the primary counter never advances across the outage (it truly
	// lost the energy), the secondary's estimate stands and the recovery
	// clamp prevents a negative delta.
	primary := &scriptSensor{name: "prim", states: []pmt.State{
		{TimeS: 0, EnergyJ: 0},
		{TimeS: 0.1, EnergyJ: 10},
		{TimeS: 0.1, EnergyJ: 10},
		{TimeS: 0.1, EnergyJ: 10},
		{TimeS: 0.1, EnergyJ: 10},
		{TimeS: 0.5, EnergyJ: 10.1}, // counter barely moved
	}}
	secondary := &scriptSensor{name: "sec", states: []pmt.State{
		{TimeS: 0.2, EnergyJ: 0},
		{TimeS: 0.4, EnergyJ: 30},
	}}
	s := New(Config{GPUHz: 10, StuckPolls: 2})
	ch := s.Add("prim", 0, primary, 10)
	ch.SetSecondary(secondary)
	for i := 0; i < 6; i++ {
		ch.Poll()
	}
	st := ch.Stats()
	// 10 J observed + 30 J secondary credit; the 10.1 J recovery read is
	// below the credited anchor and clamps to zero additional delta.
	if !approx(st.AccumJ, 40, 1e-9) {
		t.Fatalf("AccumJ = %g, want 40", st.AccumJ)
	}
}

// The two satellite edge-case tests below pin down ring-drop accounting
// under a long backend stall and Kahan accumulation across
// stuck-then-recover.

func TestRingDropAccountingAcrossStallBackfill(t *testing.T) {
	// A tiny ring (8 samples) with a backend that stalls for 50 tick
	// windows and then recovers: the backfilled catch-up ticks must rotate
	// the ring with exact drop accounting, never reallocate past cap.
	sen := &scriptSensor{name: "fake", states: []pmt.State{
		{TimeS: 0, EnergyJ: 0},
		{TimeS: 0.1, EnergyJ: 10},
		// Stall: no energy, no time — the sampler simply isn't polled.
		{TimeS: 5.1, EnergyJ: 510}, // 50 windows later
	}}
	s := New(Config{GPUHz: 10, RingCap: 8})
	ch := s.Add("fake", 0, sen, 10)
	ch.Poll()
	ch.Poll()
	ch.Poll()
	st := ch.Stats()
	// Ticks at 0, 0.1, then 0.2..5.1 inclusive = 2 + 50 = 52.
	if st.Ticks != 52 {
		t.Fatalf("Ticks = %d, want 52", st.Ticks)
	}
	if st.Dropped != 52-8 {
		t.Fatalf("Dropped = %d, want %d", st.Dropped, 52-8)
	}
	smps := ch.Samples()
	if len(smps) != 8 {
		t.Fatalf("retained = %d, want ring cap 8", len(smps))
	}
	for i := 1; i < len(smps); i++ {
		if smps[i].TimeS <= smps[i-1].TimeS {
			t.Fatal("retained ring out of order after rotation")
		}
	}
	if !approx(smps[len(smps)-1].TimeS, 5.1, 1e-9) {
		t.Fatalf("newest retained tick at %g, want 5.1", smps[len(smps)-1].TimeS)
	}
	if !approx(st.MaxPollGapS, 5.0, 1e-9) {
		t.Fatalf("MaxPollGapS = %g, want 5.0", st.MaxPollGapS)
	}
}

func TestKahanAccumulationAcrossStuckRecover(t *testing.T) {
	// Millions of tiny deltas interrupted by a stuck stretch: the Kahan
	// sum must stay exact (naive summation drifts at this magnitude).
	const n = 2_000_000
	const deltaJ = 1e-9
	states := make([]pmt.State, 0, n+10)
	t0, e0 := 0.0, 0.0
	for i := 0; i < n/2; i++ {
		states = append(states, pmt.State{TimeS: t0, EnergyJ: e0})
		t0 += 1e-3
		e0 += deltaJ
	}
	stuckE := states[len(states)-1].EnergyJ
	for i := 0; i < 5; i++ { // stuck: energy frozen, time advancing
		states = append(states, pmt.State{TimeS: t0, EnergyJ: stuckE})
		t0 += 1e-3
	}
	for i := 0; i < n/2; i++ {
		states = append(states, pmt.State{TimeS: t0, EnergyJ: e0})
		t0 += 1e-3
		e0 += deltaJ
	}
	sen := &scriptSensor{name: "fake", states: states}
	s := New(Config{GPUHz: 1000, RingCap: 16, StuckPolls: 3})
	ch := s.Add("fake", 0, sen, 1000)
	for range states {
		ch.Poll()
	}
	st := ch.Stats()
	want := states[len(states)-1].EnergyJ
	if math.Abs(st.AccumJ-want) > 1e-15*float64(n) {
		t.Fatalf("AccumJ = %.18g, want %.18g (drift %g)", st.AccumJ, want, st.AccumJ-want)
	}
	if st.StuckEvents != 1 {
		t.Fatalf("StuckEvents = %d, want 1", st.StuckEvents)
	}
}
