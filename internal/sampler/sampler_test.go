package sampler

import (
	"math"
	"strings"
	"sync"
	"testing"

	"sphenergy/internal/pmt"
	"sphenergy/internal/telemetry"
)

// scriptSensor replays a fixed sequence of states, then repeats the last.
type scriptSensor struct {
	name   string
	states []pmt.State
	i      int
}

func (s *scriptSensor) Name() string { return s.name }

func (s *scriptSensor) Read() pmt.State {
	st := s.states[s.i]
	if s.i < len(s.states)-1 {
		s.i++
	}
	return st
}

func approx(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestChannelTickGridAndLerp(t *testing.T) {
	// 100 W constant between polls at t=0 and t=0.1, then 200 W to t=0.2.
	sen := &scriptSensor{name: "fake", states: []pmt.State{
		{TimeS: 0, EnergyJ: 0},
		{TimeS: 0.1, EnergyJ: 10},
		{TimeS: 0.2, EnergyJ: 30},
	}}
	s := New(Config{GPUHz: 100})
	ch := s.Add("fake", 0, sen, 100)
	ch.Poll()
	ch.Poll()
	ch.Poll()

	got := ch.Samples()
	// Ticks at 0, 0.01, ..., 0.2 — 21 samples.
	if len(got) != 21 {
		t.Fatalf("samples = %d, want 21", len(got))
	}
	for i, smp := range got {
		wantT := float64(i) * 0.01
		if !approx(smp.TimeS, wantT, 1e-9) {
			t.Fatalf("sample %d time = %g, want %g", i, smp.TimeS, wantT)
		}
		var wantE float64
		if wantT <= 0.1 {
			wantE = 100 * wantT
		} else {
			wantE = 10 + 200*(wantT-0.1)
		}
		if !approx(smp.EnergyJ, wantE, 1e-9) {
			t.Fatalf("sample %d energy = %g, want %g", i, smp.EnergyJ, wantE)
		}
	}
	// Mean power across a tick in the second segment must be 200 W.
	if p := got[15].PowerW; !approx(p, 200, 1e-9) {
		t.Fatalf("tick power = %g, want 200", p)
	}
	if a := ch.AccumJ(); !approx(a, 30, 1e-12) {
		t.Fatalf("accum = %g, want 30", a)
	}
}

func TestChannelRingOverflow(t *testing.T) {
	states := []pmt.State{{TimeS: 0, EnergyJ: 0}}
	// 1 sample per poll at 10 Hz over 5 s → 50 ticks into a cap-8 ring.
	for i := 1; i <= 50; i++ {
		states = append(states, pmt.State{TimeS: float64(i) * 0.1, EnergyJ: float64(i)})
	}
	sen := &scriptSensor{name: "fake", states: states}
	s := New(Config{NodeHz: 10, RingCap: 8})
	ch := s.Add("fake", -1, sen, 10)
	for range states {
		ch.Poll()
	}
	got := ch.Samples()
	if len(got) != 8 {
		t.Fatalf("retained = %d, want 8", len(got))
	}
	// Oldest retained sample is tick 43 (50 emitted after the baseline at
	// tick 0 counts as a tick too: ticks 0..50 = 51, minus 8 retained).
	st := ch.Stats()
	if st.Ticks != 51 {
		t.Fatalf("ticks = %d, want 51", st.Ticks)
	}
	if st.Dropped != 43 {
		t.Fatalf("dropped = %d, want 43", st.Dropped)
	}
	for i := 1; i < len(got); i++ {
		if got[i].TimeS <= got[i-1].TimeS {
			t.Fatalf("retained series out of order at %d", i)
		}
	}
	// Accumulation is unaffected by ring overflow.
	if !approx(ch.AccumJ(), 50, 1e-9) {
		t.Fatalf("accum = %g, want 50", ch.AccumJ())
	}
}

func TestChannelWrapClamp(t *testing.T) {
	// Counter resets between polls (wrap): the negative delta must clamp
	// to zero, never driving the accumulator backwards.
	sen := &scriptSensor{name: "fake", states: []pmt.State{
		{TimeS: 0, EnergyJ: 1000},
		{TimeS: 1, EnergyJ: 1100},
		{TimeS: 2, EnergyJ: 5}, // reset
		{TimeS: 3, EnergyJ: 55},
	}}
	s := New(Config{NodeHz: 1})
	ch := s.Add("fake", -1, sen, 1)
	for range 4 {
		ch.Poll()
	}
	// 100 J + 0 (clamped) + 50 J.
	if a := ch.AccumJ(); !approx(a, 150, 1e-9) {
		t.Fatalf("accum = %g, want 150", a)
	}
	for _, smp := range ch.Samples() {
		if smp.PowerW < 0 {
			t.Fatalf("negative power %g at t=%g after wrap", smp.PowerW, smp.TimeS)
		}
	}
}

func TestChannelStalenessStats(t *testing.T) {
	sen := &scriptSensor{name: "fake", states: []pmt.State{
		{TimeS: 0, EnergyJ: 0},
		{TimeS: 0.1, EnergyJ: 1},
		{TimeS: 0.3, EnergyJ: 2}, // 0.2 s gap
		{TimeS: 0.35, EnergyJ: 3},
	}}
	s := New(Config{GPUHz: 100})
	ch := s.Add("fake", 0, sen, 100)
	for range 4 {
		ch.Poll()
	}
	st := ch.Stats()
	if st.Polls != 4 {
		t.Fatalf("polls = %d, want 4", st.Polls)
	}
	if !approx(st.MaxPollGapS, 0.2, 1e-9) {
		t.Fatalf("max gap = %g, want 0.2", st.MaxPollGapS)
	}
	if st.GapJitterS <= 0 {
		t.Fatalf("jitter = %g, want > 0 for uneven gaps", st.GapJitterS)
	}
	if !approx(st.LastTimeS, 0.35, 1e-9) {
		t.Fatalf("last time = %g, want 0.35", st.LastTimeS)
	}
}

func TestSamplerBackendRates(t *testing.T) {
	cfg := Config{GPUHz: 100, NodeHz: 10}.Defaulted()
	if r := cfg.RateFor(pmt.BackendNVML); r != 100 {
		t.Fatalf("nvml rate = %g, want 100", r)
	}
	if r := cfg.RateFor(pmt.BackendCray); r != 10 {
		t.Fatalf("cray rate = %g, want 10", r)
	}
	s := New(Config{GPUHz: 50})
	// Unknown sensor type → dummy backend → node rate (defaulted to 10).
	ch := s.Add("x", -1, &scriptSensor{name: "x", states: []pmt.State{{}}}, 0)
	if r := ch.RateHz(); !approx(r, 10, 1e-9) {
		t.Fatalf("default node rate = %g, want 10", r)
	}
}

func TestBindMetrics(t *testing.T) {
	sen := &scriptSensor{name: "fake", states: []pmt.State{
		{TimeS: 0, EnergyJ: 0},
		{TimeS: 1, EnergyJ: 200},
	}}
	s := New(Config{GPUHz: 10})
	reg := telemetry.NewRegistry()
	s.BindMetrics(reg)
	ch := s.Add("gpu0", 3, sen, 10)
	ch.Poll()
	ch.Poll()

	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		`sampled_power_w{sensor="gpu0",rank="3"} 200`,
		`sampled_energy_j_total{sensor="gpu0",rank="3"} 200`,
		`sampler_ticks_total{sensor="gpu0",rank="3"} 11`,
		`sampler_poll_gap_s_count{sensor="gpu0",rank="3"} 1`,
		`sampler_poll_gap_s_sum{sensor="gpu0",rank="3"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q:\n%s", want, out)
		}
	}
}

func TestPollGapHistogram(t *testing.T) {
	// Uneven poll cadence should land distinct gaps in the jitter histogram;
	// the zero-gap double poll must not be observed.
	sen := &scriptSensor{name: "fake", states: []pmt.State{
		{TimeS: 0, EnergyJ: 0},
		{TimeS: 0.10, EnergyJ: 10},
		{TimeS: 0.10, EnergyJ: 10}, // double poll at a phase boundary
		{TimeS: 0.40, EnergyJ: 40},
	}}
	s := New(Config{GPUHz: 10})
	reg := telemetry.NewRegistry()
	s.BindMetrics(reg)
	ch := s.Add("gpu0", 0, sen, 10)
	for range sen.states {
		ch.Poll()
	}
	h := reg.Histogram("sampler_poll_gap_s", "", telemetry.LatencyBuckets(),
		telemetry.L("sensor", "gpu0"), telemetry.L("rank", "0"))
	if h.Count() != 2 {
		t.Fatalf("gap observations = %d, want 2 (zero gaps excluded)", h.Count())
	}
	if !approx(h.Sum(), 0.4, 1e-9) {
		t.Fatalf("gap sum = %g, want 0.4", h.Sum())
	}
}

func TestNilSafety(t *testing.T) {
	var s *Sampler
	var ch *Channel
	ch.Poll()
	s.PollAll()
	s.PollNodes()
	if s.Add("x", 0, pmt.Dummy{}, 0) != nil {
		t.Fatal("nil sampler Add should return nil channel")
	}
	if s.Channels() != nil || ch.Samples() != nil {
		t.Fatal("nil accessors should return nil")
	}
	if ch.AccumJ() != 0 || s.NodeAccumJ() != 0 {
		t.Fatal("nil accumulators should be 0")
	}
}

func TestConcurrentChannels(t *testing.T) {
	// Each goroutine owns one channel — the runner's usage pattern. Under
	// -race this validates the locking discipline with BindMetrics active.
	s := New(Config{GPUHz: 100, NodeHz: 10})
	reg := telemetry.NewRegistry()
	s.BindMetrics(reg)
	var wg sync.WaitGroup
	for r := range 4 {
		states := []pmt.State{{TimeS: 0, EnergyJ: 0}}
		for i := 1; i <= 200; i++ {
			states = append(states, pmt.State{TimeS: float64(i) * 0.01, EnergyJ: float64(i)})
		}
		ch := s.Add("gpu", r, &scriptSensor{name: "gpu", states: states}, 100)
		wg.Add(1)
		go func() {
			defer wg.Done()
			for range states {
				ch.Poll()
			}
		}()
	}
	wg.Wait()
	series := s.RankSeries()
	if len(series) != 4 {
		t.Fatalf("ranks = %d, want 4", len(series))
	}
	for r, ss := range series {
		if len(ss) == 0 {
			t.Fatalf("rank %d has no samples", r)
		}
	}
	if got := s.RankAccumJ(); !approx(got, 800, 1e-6) {
		t.Fatalf("rank accum = %g, want 800", got)
	}
}
