package nvml

import (
	"errors"
	"testing"

	"sphenergy/internal/gpusim"
)

func newLib(t *testing.T, n int) *Library {
	t.Helper()
	devs := make([]*gpusim.Device, n)
	for i := range devs {
		devs[i] = gpusim.NewDevice(gpusim.A100SXM480GB(), i)
	}
	lib, err := New(devs)
	if err != nil {
		t.Fatal(err)
	}
	return lib
}

func TestRejectsAMDDevices(t *testing.T) {
	amd := gpusim.NewDevice(gpusim.MI250XGCD(), 0)
	if _, err := New([]*gpusim.Device{amd}); err == nil {
		t.Error("AMD device accepted by NVML")
	}
}

func TestUninitializedErrors(t *testing.T) {
	lib := newLib(t, 1)
	if _, err := lib.DeviceCount(); !errors.Is(err, ErrUninitialized) {
		t.Errorf("DeviceCount before Init: %v", err)
	}
	if _, err := lib.DeviceGetHandleByIndex(0); !errors.Is(err, ErrUninitialized) {
		t.Errorf("handle before Init: %v", err)
	}
}

func TestInitShutdownLifecycle(t *testing.T) {
	lib := newLib(t, 2)
	if err := lib.Init(); err != nil {
		t.Fatal(err)
	}
	n, err := lib.DeviceCount()
	if err != nil || n != 2 {
		t.Fatalf("DeviceCount = %d, %v", n, err)
	}
	if err := lib.Shutdown(); err != nil {
		t.Fatal(err)
	}
	if _, err := lib.DeviceCount(); err == nil {
		t.Error("DeviceCount after Shutdown should fail")
	}
}

func TestHandleOutOfRange(t *testing.T) {
	lib := newLib(t, 1)
	lib.Init()
	if _, err := lib.DeviceGetHandleByIndex(5); !errors.Is(err, ErrInvalidArgument) {
		t.Errorf("bad index: %v", err)
	}
	if _, err := lib.DeviceGetHandleByIndex(-1); err == nil {
		t.Error("negative index accepted")
	}
}

func TestSetApplicationsClocks(t *testing.T) {
	lib := newLib(t, 1)
	lib.Init()
	dev, _ := lib.DeviceGetHandleByIndex(0)
	applied, err := dev.SetApplicationsClocks(0, 1007)
	if err != nil {
		t.Fatal(err)
	}
	if applied != 1005 {
		t.Errorf("applied %d, want snapped 1005", applied)
	}
	got, err := dev.ClockInfo(ClockSM)
	if err != nil || got != 1005 {
		t.Errorf("ClockInfo(SM) = %d, %v", got, err)
	}
	if err := dev.ResetApplicationsClocks(); err != nil {
		t.Fatal(err)
	}
}

func TestClockInfoDomains(t *testing.T) {
	lib := newLib(t, 1)
	lib.Init()
	dev, _ := lib.DeviceGetHandleByIndex(0)
	mem, err := dev.ClockInfo(ClockMem)
	if err != nil || mem != 1593 {
		t.Errorf("memory clock = %d, %v (want 1593)", mem, err)
	}
	if _, err := dev.ClockInfo(ClockDomain(99)); err == nil {
		t.Error("bad clock domain accepted")
	}
}

func TestSupportedGraphicsClocksDescending(t *testing.T) {
	lib := newLib(t, 1)
	lib.Init()
	dev, _ := lib.DeviceGetHandleByIndex(0)
	clocks := dev.SupportedGraphicsClocks()
	if len(clocks) == 0 || clocks[0] != 1410 {
		t.Fatalf("clock table: %v", clocks)
	}
	for i := 1; i < len(clocks); i++ {
		if clocks[i] >= clocks[i-1] {
			t.Fatal("clock table not descending")
		}
	}
}

func TestEnergyAndPowerUnits(t *testing.T) {
	lib := newLib(t, 1)
	lib.Init()
	dev, _ := lib.DeviceGetHandleByIndex(0)
	dev.SetApplicationsClocks(0, 1410)
	dev.Sim().Idle(2) // 2 s at idle power
	mj, err := dev.TotalEnergyConsumption()
	if err != nil {
		t.Fatal(err)
	}
	wantMJ := int64(dev.Sim().Spec().IdlePowerW * 2 * 1000)
	if mj < wantMJ-1 || mj > wantMJ+1 {
		t.Errorf("energy %d mJ, want ~%d", mj, wantMJ)
	}
	mw, err := dev.PowerUsage()
	if err != nil {
		t.Fatal(err)
	}
	if mw < 1000 {
		t.Errorf("power %d mW implausibly low", mw)
	}
}

func TestUtilizationRatesPercent(t *testing.T) {
	lib := newLib(t, 1)
	lib.Init()
	dev, _ := lib.DeviceGetHandleByIndex(0)
	u, err := dev.UtilizationRates()
	if err != nil {
		t.Fatal(err)
	}
	if u < 0 || u > 100 {
		t.Errorf("utilization %d%% out of range", u)
	}
}

func TestPowerManagementLimit(t *testing.T) {
	lib := newLib(t, 1)
	lib.Init()
	dev, _ := lib.DeviceGetHandleByIndex(0)
	mw, err := dev.PowerManagementLimit()
	if err != nil || mw != 400000 {
		t.Errorf("default limit %d mW, %v; want 400000", mw, err)
	}
	if err := dev.SetPowerManagementLimit(300000); err != nil {
		t.Fatal(err)
	}
	mw, _ = dev.PowerManagementLimit()
	if mw != 300000 {
		t.Errorf("limit after set %d mW", mw)
	}
	if err := dev.SetPowerManagementLimit(1000); err == nil {
		t.Error("absurd limit accepted")
	}
}

func TestName(t *testing.T) {
	lib := newLib(t, 1)
	lib.Init()
	dev, _ := lib.DeviceGetHandleByIndex(0)
	if dev.Name() != "NVIDIA A100-SXM4-80GB" {
		t.Errorf("Name = %q", dev.Name())
	}
}
