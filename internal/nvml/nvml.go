// Package nvml provides an NVML-shaped management API over simulated
// Nvidia devices. Names and call shapes follow the NVIDIA Management
// Library (nvmlInit, nvmlDeviceGetHandleByIndex,
// nvmlDeviceSetApplicationsClocks, ...) so that the instrumentation code in
// internal/core reads like the paper's §III-D listing.
//
// A Library instance corresponds to one node's NVML context: device indices
// are node-local ordinals, exactly what getNvmlDevice resolves for the MPI
// rank bound to the device.
package nvml

import (
	"errors"
	"fmt"

	"sphenergy/internal/gpusim"
)

// Return codes, mirroring nvmlReturn_t.
var (
	// ErrUninitialized is returned when the library was not initialized.
	ErrUninitialized = errors.New("nvml: uninitialized")
	// ErrInvalidArgument is returned for out-of-range indices or clocks.
	ErrInvalidArgument = errors.New("nvml: invalid argument")
	// ErrNotSupported is returned when the device cannot honor a request.
	ErrNotSupported = errors.New("nvml: not supported")
)

// FaultHook intercepts management-library operations for fault injection.
// op names the operation ("energy-read", "clock-set", "power-read"), arg
// carries the operation's integer argument where one exists (the requested
// SM MHz for clock-set). The hook may pass the call through (arg, nil),
// rewrite the argument (a clamped clock), or fail it. Production paths
// leave the hook nil.
type FaultHook func(op string, arg int) (int, error)

// Device is an opaque device handle (nvmlDevice_t).
type Device struct {
	d   *gpusim.Device
	lib *Library
}

// Library is one NVML context over a node's Nvidia devices.
type Library struct {
	devices     []*gpusim.Device
	initialized bool
	hook        FaultHook
}

// SetFaultHook installs (or clears, with nil) the fault-injection hook.
// Handles resolved before or after the call observe the new hook.
func (l *Library) SetFaultHook(h FaultHook) { l.hook = h }

// New creates a library over the given devices. Non-Nvidia devices are
// rejected: the caller should hand AMD devices to the rsmi package instead.
func New(devices []*gpusim.Device) (*Library, error) {
	for _, d := range devices {
		if d.Spec().Vendor != gpusim.Nvidia {
			return nil, fmt.Errorf("%w: device %q is not an Nvidia device", ErrInvalidArgument, d.Spec().Name)
		}
	}
	return &Library{devices: devices}, nil
}

// Init initializes the library (nvmlInit_v2).
func (l *Library) Init() error {
	l.initialized = true
	return nil
}

// Shutdown tears down the library (nvmlShutdown).
func (l *Library) Shutdown() error {
	l.initialized = false
	return nil
}

// DeviceCount returns the number of devices (nvmlDeviceGetCount_v2).
func (l *Library) DeviceCount() (int, error) {
	if !l.initialized {
		return 0, ErrUninitialized
	}
	return len(l.devices), nil
}

// DeviceGetHandleByIndex resolves a device handle
// (nvmlDeviceGetHandleByIndex_v2).
func (l *Library) DeviceGetHandleByIndex(index int) (Device, error) {
	if !l.initialized {
		return Device{}, ErrUninitialized
	}
	if index < 0 || index >= len(l.devices) {
		return Device{}, fmt.Errorf("%w: device index %d", ErrInvalidArgument, index)
	}
	return Device{d: l.devices[index], lib: l}, nil
}

// SetFaultHook installs the hook on the handle's library — convenience for
// callers that hold only a Device (e.g. freqctl setters built by
// SetterFor, whose library is internal). No-op on zero-value handles.
func (dev Device) SetFaultHook(h FaultHook) {
	if dev.lib != nil {
		dev.lib.SetFaultHook(h)
	}
}

// fault consults the library hook; zero-value handles (no library) and
// hookless libraries pass everything through.
func (dev Device) fault(op string, arg int) (int, error) {
	if dev.lib == nil || dev.lib.hook == nil {
		return arg, nil
	}
	return dev.lib.hook(op, arg)
}

// Name returns the product name (nvmlDeviceGetName).
func (dev Device) Name() string { return dev.d.Spec().Name }

// SetApplicationsClocks pins memory and SM clocks
// (nvmlDeviceSetApplicationsClocks). The simulated devices accept any
// supported SM clock without requiring root, emulating the user-level
// control path the paper establishes. Returns the applied SM clock.
func (dev Device) SetApplicationsClocks(memMHz, smMHz int) (int, error) {
	smMHz, err := dev.fault("clock-set", smMHz)
	if err != nil {
		return 0, err
	}
	applied, err := dev.d.SetApplicationClocks(memMHz, smMHz)
	if err != nil {
		return 0, fmt.Errorf("%w: %v", ErrNotSupported, err)
	}
	return applied, nil
}

// ResetApplicationsClocks restores governor control
// (nvmlDeviceResetApplicationsClocks).
func (dev Device) ResetApplicationsClocks() error {
	dev.d.ResetApplicationClocks()
	return nil
}

// ClockInfo returns the current clock of a domain in MHz
// (nvmlDeviceGetClockInfo).
func (dev Device) ClockInfo(domain ClockDomain) (int, error) {
	switch domain {
	case ClockSM, ClockGraphics:
		return dev.d.SMClockMHz(), nil
	case ClockMem:
		return dev.d.MemClockMHz(), nil
	default:
		return 0, ErrInvalidArgument
	}
}

// SupportedGraphicsClocks lists supported application SM clocks, descending
// (nvmlDeviceGetSupportedGraphicsClocks).
func (dev Device) SupportedGraphicsClocks() []int {
	return dev.d.Spec().SupportedClocksMHz()
}

// PowerUsage returns the current board draw in milliwatts
// (nvmlDeviceGetPowerUsage).
func (dev Device) PowerUsage() (int, error) {
	if _, err := dev.fault("power-read", 0); err != nil {
		return 0, err
	}
	return int(dev.d.PowerW() * 1000), nil
}

// TotalEnergyConsumption returns cumulative energy in millijoules
// (nvmlDeviceGetTotalEnergyConsumption).
func (dev Device) TotalEnergyConsumption() (int64, error) {
	if _, err := dev.fault("energy-read", 0); err != nil {
		return 0, err
	}
	return int64(dev.d.EnergyJ() * 1000), nil
}

// PowerManagementLimit returns the active board power limit in milliwatts
// (nvmlDeviceGetPowerManagementLimit).
func (dev Device) PowerManagementLimit() (int, error) {
	return int(dev.d.PowerLimitW() * 1000), nil
}

// SetPowerManagementLimit caps the board power in milliwatts
// (nvmlDeviceSetPowerManagementLimit).
func (dev Device) SetPowerManagementLimit(mw int) error {
	if err := dev.d.SetPowerLimit(float64(mw) / 1000); err != nil {
		return fmt.Errorf("%w: %v", ErrInvalidArgument, err)
	}
	return nil
}

// UtilizationRates returns the coarse GPU utilization percentage
// (nvmlDeviceGetUtilizationRates). Like the real counter, this reflects
// "a kernel was resident", not how well it used the device.
func (dev Device) UtilizationRates() (int, error) {
	return int(dev.d.Utilization()*100 + 0.5), nil
}

// Sim exposes the underlying simulated device for test hooks; production
// code paths use only the NVML-shaped methods above.
func (dev Device) Sim() *gpusim.Device { return dev.d }

// ClockDomain selects a clock domain (nvmlClockType_t).
type ClockDomain int

// Clock domains.
const (
	ClockGraphics ClockDomain = iota
	ClockSM
	ClockMem
)
