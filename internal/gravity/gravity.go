// Package gravity implements Barnes–Hut tree gravity with monopole and
// quadrupole moments and Plummer softening, the self-gravity solver needed
// by the Evrard collapse workload.
//
// The tree is a pointer-based octree built over the particle positions; the
// multipole acceptance criterion is the classic geometric opening angle
// s/d < theta. Traversals are independent per target particle and run in
// parallel.
package gravity

import (
	"math"

	"sphenergy/internal/par"
)

// node is one octree cell.
type node struct {
	cx, cy, cz float64 // geometric center
	half       float64 // half edge length
	mass       float64
	mx, my, mz float64 // center of mass
	// Quadrupole moments (traceless, about the center of mass).
	qxx, qxy, qxz, qyy, qyz, qzz float64

	children [8]*node
	leafIdx  []int32 // particle indices for leaves
}

const leafCap = 16

// Tree is a built gravity octree.
type Tree struct {
	root    *node
	x, y, z []float64
	m       []float64
	// Theta is the opening angle; Eps the Plummer softening length; G the
	// gravitational constant.
	Theta, Eps, G float64
}

// Build constructs the octree for the given particles.
func Build(x, y, z, m []float64, theta, eps, g float64) *Tree {
	t := &Tree{x: x, y: y, z: z, m: m, Theta: theta, Eps: eps, G: g}
	if len(x) == 0 {
		return t
	}
	// Bounding cube.
	minX, maxX := x[0], x[0]
	minY, maxY := y[0], y[0]
	minZ, maxZ := z[0], z[0]
	for i := 1; i < len(x); i++ {
		minX = math.Min(minX, x[i])
		maxX = math.Max(maxX, x[i])
		minY = math.Min(minY, y[i])
		maxY = math.Max(maxY, y[i])
		minZ = math.Min(minZ, z[i])
		maxZ = math.Max(maxZ, z[i])
	}
	cx, cy, cz := (minX+maxX)/2, (minY+maxY)/2, (minZ+maxZ)/2
	half := math.Max(maxX-minX, math.Max(maxY-minY, maxZ-minZ))/2 + 1e-12
	t.root = &node{cx: cx, cy: cy, cz: cz, half: half}
	idx := make([]int32, len(x))
	for i := range idx {
		idx[i] = int32(i)
	}
	t.build(t.root, idx, 0)
	t.computeMoments(t.root)
	return t
}

const maxDepth = 48

func (t *Tree) build(n *node, idx []int32, depth int) {
	if len(idx) <= leafCap || depth >= maxDepth {
		n.leafIdx = idx
		return
	}
	// Partition indices into octants.
	var buckets [8][]int32
	for _, i := range idx {
		o := 0
		if t.x[i] >= n.cx {
			o |= 1
		}
		if t.y[i] >= n.cy {
			o |= 2
		}
		if t.z[i] >= n.cz {
			o |= 4
		}
		buckets[o] = append(buckets[o], i)
	}
	h := n.half / 2
	for o, b := range buckets {
		if len(b) == 0 {
			continue
		}
		dx, dy, dz := -h, -h, -h
		if o&1 != 0 {
			dx = h
		}
		if o&2 != 0 {
			dy = h
		}
		if o&4 != 0 {
			dz = h
		}
		child := &node{cx: n.cx + dx, cy: n.cy + dy, cz: n.cz + dz, half: h}
		n.children[o] = child
		t.build(child, b, depth+1)
	}
}

func (t *Tree) computeMoments(n *node) {
	if n == nil {
		return
	}
	if n.leafIdx != nil {
		for _, i := range n.leafIdx {
			m := t.m[i]
			n.mass += m
			n.mx += m * t.x[i]
			n.my += m * t.y[i]
			n.mz += m * t.z[i]
		}
	} else {
		for _, c := range n.children {
			if c == nil {
				continue
			}
			t.computeMoments(c)
			n.mass += c.mass
			n.mx += c.mass * c.mx
			n.my += c.mass * c.my
			n.mz += c.mass * c.mz
		}
	}
	if n.mass > 0 {
		n.mx /= n.mass
		n.my /= n.mass
		n.mz /= n.mass
	}
	// Quadrupole about the center of mass.
	if n.leafIdx != nil {
		for _, i := range n.leafIdx {
			t.accumulateQuad(n, t.x[i], t.y[i], t.z[i], t.m[i])
		}
	} else {
		for _, c := range n.children {
			if c == nil {
				continue
			}
			// Child quadrupole shifted to this node's COM (parallel axis).
			t.accumulateQuad(n, c.mx, c.my, c.mz, c.mass)
			n.qxx += c.qxx
			n.qxy += c.qxy
			n.qxz += c.qxz
			n.qyy += c.qyy
			n.qyz += c.qyz
			n.qzz += c.qzz
		}
	}
}

func (t *Tree) accumulateQuad(n *node, px, py, pz, m float64) {
	dx, dy, dz := px-n.mx, py-n.my, pz-n.mz
	r2 := dx*dx + dy*dy + dz*dz
	n.qxx += m * (3*dx*dx - r2)
	n.qyy += m * (3*dy*dy - r2)
	n.qzz += m * (3*dz*dz - r2)
	n.qxy += m * 3 * dx * dy
	n.qxz += m * 3 * dx * dz
	n.qyz += m * 3 * dy * dz
}

// AccelerationsInto computes gravitational accelerations and potentials for
// every particle, adding into ax/ay/az and storing potential (per unit mass)
// in pot (pot may be nil).
func (t *Tree) AccelerationsInto(ax, ay, az, pot []float64) {
	if t.root == nil {
		return
	}
	par.For(len(t.x), func(i int) {
		gx, gy, gz, p := t.walk(t.root, i)
		ax[i] += t.G * gx
		ay[i] += t.G * gy
		az[i] += t.G * gz
		if pot != nil {
			pot[i] = t.G * p
		}
	})
}

// walk traverses the tree for target particle i, returning the
// un-scaled (G=1) acceleration and potential contributions.
func (t *Tree) walk(n *node, i int) (gx, gy, gz, pot float64) {
	dx := n.mx - t.x[i]
	dy := n.my - t.y[i]
	dz := n.mz - t.z[i]
	r2 := dx*dx + dy*dy + dz*dz
	size := 2 * n.half
	if n.leafIdx == nil && size*size < t.Theta*t.Theta*r2 {
		// Accept: monopole + quadrupole.
		return t.multipole(n, dx, dy, dz, r2)
	}
	if n.leafIdx != nil {
		for _, j := range n.leafIdx {
			if int(j) == i {
				continue
			}
			ddx := t.x[j] - t.x[i]
			ddy := t.y[j] - t.y[i]
			ddz := t.z[j] - t.z[i]
			rr2 := ddx*ddx + ddy*ddy + ddz*ddz + t.Eps*t.Eps
			inv := 1 / math.Sqrt(rr2)
			inv3 := inv * inv * inv
			m := t.m[j]
			gx += m * ddx * inv3
			gy += m * ddy * inv3
			gz += m * ddz * inv3
			pot -= m * inv
		}
		return
	}
	for _, c := range n.children {
		if c == nil {
			continue
		}
		cgx, cgy, cgz, cp := t.walk(c, i)
		gx += cgx
		gy += cgy
		gz += cgz
		pot += cp
	}
	return
}

// multipole evaluates the monopole + quadrupole field of node n at relative
// position (dx, dy, dz) with r² = dx²+dy²+dz².
func (t *Tree) multipole(n *node, dx, dy, dz, r2 float64) (gx, gy, gz, pot float64) {
	r2 += t.Eps * t.Eps
	inv := 1 / math.Sqrt(r2)
	inv2 := inv * inv
	inv3 := inv2 * inv
	inv5 := inv3 * inv2
	inv7 := inv5 * inv2
	// Monopole.
	gx = n.mass * dx * inv3
	gy = n.mass * dy * inv3
	gz = n.mass * dz * inv3
	pot = -n.mass * inv
	// Quadrupole: phi_Q = -(1/2) * (r·Q·r) / r^5 ... using the traceless Q.
	qx := n.qxx*dx + n.qxy*dy + n.qxz*dz
	qy := n.qxy*dx + n.qyy*dy + n.qyz*dz
	qz := n.qxz*dx + n.qyz*dy + n.qzz*dz
	rqr := dx*qx + dy*qy + dz*qz
	pot -= 0.5 * rqr * inv5
	// grad of phi_Q: dphi/dx = -(Qr)_x / r^5 + (5/2) rqr x / r^7.
	gx += -qx*inv5 + 2.5*rqr*dx*inv7
	gy += -qy*inv5 + 2.5*rqr*dy*inv7
	gz += -qz*inv5 + 2.5*rqr*dz*inv7
	return
}

// TotalMass returns the mass accounted at the root (a consistency check).
func (t *Tree) TotalMass() float64 {
	if t.root == nil {
		return 0
	}
	return t.root.mass
}
