package gravity

import (
	"math"
	"testing"

	"sphenergy/internal/rng"
)

func TestTwoBodyAcceleration(t *testing.T) {
	x := []float64{0, 1}
	y := []float64{0, 0}
	z := []float64{0, 0}
	m := []float64{2, 3}
	tree := Build(x, y, z, m, 0.5, 0, 1)
	ax := make([]float64, 2)
	ay := make([]float64, 2)
	az := make([]float64, 2)
	pot := make([]float64, 2)
	tree.AccelerationsInto(ax, ay, az, pot)
	// a0 = G m1 / r^2 toward +x; a1 = G m0 / r^2 toward -x.
	if math.Abs(ax[0]-3) > 1e-12 {
		t.Errorf("ax[0] = %v, want 3", ax[0])
	}
	if math.Abs(ax[1]+2) > 1e-12 {
		t.Errorf("ax[1] = %v, want -2", ax[1])
	}
	if ay[0] != 0 || az[0] != 0 {
		t.Error("off-axis acceleration for axial pair")
	}
	if math.Abs(pot[0]+3) > 1e-12 || math.Abs(pot[1]+2) > 1e-12 {
		t.Errorf("potentials = %v, %v; want -3, -2", pot[0], pot[1])
	}
}

func TestSofteningBoundsCloseEncounter(t *testing.T) {
	x := []float64{0, 1e-9}
	y := []float64{0, 0}
	z := []float64{0, 0}
	m := []float64{1, 1}
	tree := Build(x, y, z, m, 0.5, 0.01, 1)
	ax := make([]float64, 2)
	tree.AccelerationsInto(ax, make([]float64, 2), make([]float64, 2), nil)
	// Softened force is bounded by ~G m / eps^2.
	if math.Abs(ax[0]) > 1.01/(0.01*0.01) {
		t.Errorf("softening failed to bound force: %v", ax[0])
	}
}

// bruteForce computes direct-sum accelerations for reference.
func bruteForce(x, y, z, m []float64, eps, g float64) (ax, ay, az []float64) {
	n := len(x)
	ax = make([]float64, n)
	ay = make([]float64, n)
	az = make([]float64, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i == j {
				continue
			}
			dx, dy, dz := x[j]-x[i], y[j]-y[i], z[j]-z[i]
			r2 := dx*dx + dy*dy + dz*dz + eps*eps
			inv3 := 1 / (r2 * math.Sqrt(r2))
			ax[i] += g * m[j] * dx * inv3
			ay[i] += g * m[j] * dy * inv3
			az[i] += g * m[j] * dz * inv3
		}
	}
	return
}

func randomCluster(n int, seed uint64) (x, y, z, m []float64) {
	r := rng.New(seed)
	x = make([]float64, n)
	y = make([]float64, n)
	z = make([]float64, n)
	m = make([]float64, n)
	for i := 0; i < n; i++ {
		// Plummer-ish ball.
		x[i] = r.Norm() * 0.3
		y[i] = r.Norm() * 0.3
		z[i] = r.Norm() * 0.3
		m[i] = 0.5 + r.Float64()
	}
	return
}

func TestTreeMatchesBruteForce(t *testing.T) {
	const n = 400
	x, y, z, m := randomCluster(n, 1)
	const eps, g = 0.01, 1.0
	tree := Build(x, y, z, m, 0.4, eps, g)
	ax := make([]float64, n)
	ay := make([]float64, n)
	az := make([]float64, n)
	tree.AccelerationsInto(ax, ay, az, nil)
	bx, by, bz := bruteForce(x, y, z, m, eps, g)
	var errSum, refSum float64
	for i := 0; i < n; i++ {
		dx, dy, dz := ax[i]-bx[i], ay[i]-by[i], az[i]-bz[i]
		errSum += math.Sqrt(dx*dx + dy*dy + dz*dz)
		refSum += math.Sqrt(bx[i]*bx[i] + by[i]*by[i] + bz[i]*bz[i])
	}
	relErr := errSum / refSum
	if relErr > 0.01 {
		t.Errorf("mean relative force error %v, want < 1%% at theta=0.4 with quadrupoles", relErr)
	}
}

func TestSmallerThetaIsMoreAccurate(t *testing.T) {
	const n = 300
	x, y, z, m := randomCluster(n, 2)
	const eps, g = 0.01, 1.0
	bx, by, bz := bruteForce(x, y, z, m, eps, g)
	errAt := func(theta float64) float64 {
		tree := Build(x, y, z, m, theta, eps, g)
		ax := make([]float64, n)
		ay := make([]float64, n)
		az := make([]float64, n)
		tree.AccelerationsInto(ax, ay, az, nil)
		var e float64
		for i := 0; i < n; i++ {
			dx, dy, dz := ax[i]-bx[i], ay[i]-by[i], az[i]-bz[i]
			e += math.Sqrt(dx*dx + dy*dy + dz*dz)
		}
		return e
	}
	if errAt(0.3) > errAt(0.9) {
		t.Error("theta=0.3 less accurate than theta=0.9")
	}
}

func TestTotalMass(t *testing.T) {
	x, y, z, m := randomCluster(500, 3)
	tree := Build(x, y, z, m, 0.5, 0.01, 1)
	want := 0.0
	for _, v := range m {
		want += v
	}
	if math.Abs(tree.TotalMass()-want) > 1e-9*want {
		t.Errorf("TotalMass = %v, want %v", tree.TotalMass(), want)
	}
}

func TestMomentumConservationApprox(t *testing.T) {
	// Tree forces are not exactly antisymmetric, but the net force on a
	// self-gravitating cluster must be small relative to the force scale.
	const n = 300
	x, y, z, m := randomCluster(n, 4)
	tree := Build(x, y, z, m, 0.5, 0.01, 1)
	ax := make([]float64, n)
	ay := make([]float64, n)
	az := make([]float64, n)
	tree.AccelerationsInto(ax, ay, az, nil)
	var fx, fy, fz, scale float64
	for i := 0; i < n; i++ {
		fx += m[i] * ax[i]
		fy += m[i] * ay[i]
		fz += m[i] * az[i]
		scale += m[i] * math.Sqrt(ax[i]*ax[i]+ay[i]*ay[i]+az[i]*az[i])
	}
	net := math.Sqrt(fx*fx + fy*fy + fz*fz)
	if net/scale > 0.01 {
		t.Errorf("net force fraction %v, want < 1%%", net/scale)
	}
}

func TestPotentialIsNegative(t *testing.T) {
	const n = 200
	x, y, z, m := randomCluster(n, 5)
	tree := Build(x, y, z, m, 0.5, 0.01, 1)
	pot := make([]float64, n)
	tree.AccelerationsInto(make([]float64, n), make([]float64, n), make([]float64, n), pot)
	for i, p := range pot {
		if p >= 0 {
			t.Fatalf("potential[%d] = %v, want < 0", i, p)
		}
	}
}

func TestEmptyAndSingle(t *testing.T) {
	empty := Build(nil, nil, nil, nil, 0.5, 0.01, 1)
	empty.AccelerationsInto(nil, nil, nil, nil) // must not panic
	one := Build([]float64{0}, []float64{0}, []float64{0}, []float64{1}, 0.5, 0.01, 1)
	ax := make([]float64, 1)
	one.AccelerationsInto(ax, make([]float64, 1), make([]float64, 1), nil)
	if ax[0] != 0 {
		t.Errorf("single particle accelerates itself: %v", ax[0])
	}
}
