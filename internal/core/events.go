package core

import (
	"sphenergy/internal/events"
	"sphenergy/internal/freqctl"
	"sphenergy/internal/gpusim"
	"sphenergy/internal/sampler"
)

// runEvents wires the decision ledger into a run. Like runTelemetry, a nil
// *runEvents means the ledger is off and every hook below is a nil-check
// no-op, preserving the §III-B non-perturbation property: a run with the
// ledger enabled is bit-identical to one without.
//
// All event timestamps use the absolute virtual clock (world/device time),
// the same timebase as trace spans and sampler series, so ledger rows join
// directly against traceanalysis and attrib output.
type runEvents struct {
	led    *events.Ledger
	stepFn func() int // coordinator's current step; nil before the loop
	// lastLoad tracks the survivor load multiplier so degradation events
	// fire on transitions only.
	lastLoad float64
	// bufs stages rank-goroutine events per rank so the hot path never
	// touches the ledger mutex: a rank appends to its own buffer during a
	// phase (ordered against the coordinator by the worker channel handoff,
	// like profile.Record) and the coordinator drains all buffers at step
	// boundaries in rank order. Besides killing cross-rank lock contention,
	// rank-ordered draining makes the ledger's event sequence deterministic
	// — direct emission would interleave ranks by goroutine schedule.
	bufs []*rankEvents
}

// rankEvents is one rank's staging buffer; allocated separately per rank so
// two ranks' append bookkeeping never shares a cache line.
type rankEvents struct {
	evs []events.Event
}

// newRunEvents builds the run's ledger wiring, or nil when Config.Events
// is unset.
func newRunEvents(cfg Config) *runEvents {
	if cfg.Events == nil {
		return nil
	}
	re := &runEvents{led: cfg.Events, lastLoad: 1, bufs: make([]*rankEvents, cfg.Ranks)}
	for r := range re.bufs {
		re.bufs[r] = &rankEvents{}
	}
	return re
}

// stage appends a rank-goroutine event to the rank's buffer. Only call
// from the rank's own goroutine during a phase, or from the coordinator
// while the workers are idle (setup, reset, sampler PollAll).
func (re *runEvents) stage(rank int, ev events.Event) {
	rb := re.bufs[rank]
	rb.evs = append(rb.evs, ev)
}

// flushRanks drains every rank's staged events into the ledger in rank
// order. Coordinator only, between phases. FreqDecision events route
// through the ledger's prediction-attaching emit.
func (re *runEvents) flushRanks() {
	if re == nil {
		return
	}
	for _, rb := range re.bufs {
		for _, ev := range rb.evs {
			if ev.Type == events.FreqDecision {
				re.led.FreqDecision(ev.TimeS, ev.Step, ev.Rank, ev.Subject,
					ev.RequestedMHz, ev.AppliedMHz)
			} else {
				re.led.Emit(ev)
			}
		}
		rb.evs = rb.evs[:0]
	}
}

// step reads the coordinator's current step (-1 outside the loop). Rank
// goroutines may call this: like the fault injectors' step reader, the
// worker channel handoff orders their reads after the coordinator's write.
func (re *runEvents) step() int {
	if re == nil || re.stepFn == nil {
		return -1
	}
	return re.stepFn()
}

// trackSteps installs the coordinator's current-step reader.
func (re *runEvents) trackSteps(fn func() int) {
	if re == nil {
		return
	}
	re.stepFn = fn
}

func (re *runEvents) beginRun(cfg Config, strategy string) {
	if re == nil {
		return
	}
	re.led.BeginRun(string(cfg.Sim), cfg.System.Name, strategy, cfg.Ranks, cfg.Steps)
}

func (re *runEvents) stepDone(timeS float64, step int, stepJ float64) {
	if re == nil {
		return
	}
	re.flushRanks()
	re.led.StepDone(timeS, step, stepJ)
}

func (re *runEvents) endRun(timeS float64) {
	if re == nil {
		return
	}
	re.flushRanks()
	re.led.EndRun(timeS)
}

func (re *runEvents) summary() *events.Summary {
	if re == nil {
		return nil
	}
	return re.led.Summary()
}

// instrumentRank hooks one rank's frequency-control path into the ledger:
// the strategy is wrapped in a freqctl.Traced whose sink records applied
// clock changes (with the tuner's prediction attached by the ledger), and
// the resilient setter's event stream — retries, absorbs, clamps, breaker
// trips — is forwarded when fault wiring installed one. Must run after
// fs.wireRank (so the resilient setter exists to hook) and composes with
// rt.instrumentRank: the two Traced layers nest, each capturing the same
// Apply through its own capture setter.
func (re *runEvents) instrumentRank(rc *rankCtx, rank int) {
	if re == nil {
		return
	}
	if rs, ok := rc.setter.(*freqctl.ResilientSetter); ok {
		re.hookResilient(rs, rank, rc.dev)
	}
	rc.strategy = &freqctl.Traced{
		Inner: rc.strategy,
		Sink:  &ledgerDecisionSink{re: re, rank: rank, dev: rc.dev},
	}
}

// hookResilient forwards the resilient setter's actions as freq-* events.
// OnEvent fires under the setter's mutex on the rank's own goroutine; the
// ledger mutex is a leaf, so the nesting cannot deadlock. Resilience
// events are fault-path only, so the error formatting never runs on the
// healthy steady state.
func (re *runEvents) hookResilient(rs *freqctl.ResilientSetter, rank int, dev *gpusim.Device) {
	rs.OnEvent = func(ev freqctl.ResilientEvent) {
		var typ events.Type
		switch ev.Kind {
		case "retry":
			typ = events.FreqRetry
		case "absorb":
			typ = events.FreqAbsorb
		case "clamp":
			typ = events.FreqClamp
		case "breaker-trip":
			typ = events.FreqBreakerTrip
		case "short-circuit":
			typ = events.FreqShortCircuit
		default:
			return
		}
		errText := ""
		if ev.Err != nil {
			errText = ev.Err.Error()
		}
		re.stage(rank, events.Event{
			TimeS: dev.Now(), Step: re.step(), Rank: rank, Type: typ,
			Subject: ev.Op, RequestedMHz: ev.MHz, Err: errText,
		})
	}
}

// ledgerDecisionSink records applied frequency decisions into the ledger.
// One sink serves one rank's goroutine (the Traced contract).
type ledgerDecisionSink struct {
	re   *runEvents
	rank int
	dev  *gpusim.Device
}

// StrategyDecision implements freqctl.DecisionSink. Elided switches
// (requestedMHz < 0) are skipped, mirroring the tracer's sink: the ledger
// records clock transitions, not every Apply.
func (s *ledgerDecisionSink) StrategyDecision(function string, requestedMHz, appliedMHz int) {
	if requestedMHz < 0 {
		return
	}
	s.re.stage(s.rank, events.Event{
		TimeS: s.dev.Now(), Step: s.re.step(), Rank: s.rank,
		Type: events.FreqDecision, Subject: function,
		RequestedMHz: requestedMHz, AppliedMHz: appliedMHz,
	})
}

// samplerSink bridges sampler degradation transitions into the ledger (nil
// when the ledger is off, which the sampler treats as no sink).
func (re *runEvents) samplerSink() sampler.TransitionFunc {
	if re == nil {
		return nil
	}
	return func(name string, rank int, degraded bool, detail string) {
		typ := events.SamplerRecovered
		if degraded {
			typ = events.SamplerDegraded
		}
		ev := events.Event{
			Step: re.step(), Rank: rank, Type: typ,
			Subject: name, Detail: detail,
		}
		// Rank channels poll on their rank's goroutine (or the coordinator
		// while workers idle) — stage like any rank event. Node channels
		// (rank -1) always poll from the coordinator: emit directly.
		if rank >= 0 && rank < len(re.bufs) {
			re.stage(rank, ev)
			return
		}
		re.led.Emit(ev)
	}
}

// neighborStep records the step's FindNeighbors trigger: a full candidate
// rebuild or a Verlet-skin refresh (Config.NeighborRebuildEvery).
func (re *runEvents) neighborStep(timeS float64, step int, refresh bool) {
	if re == nil {
		return
	}
	typ, detail := events.NbrRebuild, "cadence"
	if refresh {
		typ, detail = events.NbrRefresh, "skin-reuse"
	}
	re.led.Emit(events.Event{TimeS: timeS, Step: step, Rank: -1, Type: typ, Detail: detail})
}

// rankFailures records rank deaths newly observed by checkStep (from is
// the failure count before the check) and the degradation policy's load
// transition when redistribution changed the survivor multiplier.
func (re *runEvents) rankFailures(fs *faultState, from int, load float64) {
	if re == nil || fs == nil {
		return
	}
	for _, f := range fs.failures[from:] {
		re.led.Emit(events.Event{
			TimeS: f.TimeS, Step: f.Step, Rank: f.Rank,
			Type: events.RankFail, Detail: fs.policy,
		})
	}
	if load != re.lastLoad {
		re.lastLoad = load
		re.led.Emit(events.Event{
			Step: re.step(), Rank: -1, Type: events.Degradation,
			Value: load, Detail: fs.policy,
		})
	}
}
