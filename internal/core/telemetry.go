package core

import (
	"fmt"
	"strconv"
	"sync/atomic"

	"sphenergy/internal/freqctl"
	"sphenergy/internal/gpusim"
	"sphenergy/internal/mpisim"
	"sphenergy/internal/telemetry"
)

// runTelemetry bundles the run's telemetry sinks and pre-registered
// metrics. A nil *runTelemetry means telemetry is off; every hook below
// guards on that, so the uninstrumented path costs one nil check per phase
// — the §III-B non-perturbation property.
type runTelemetry struct {
	tr  *telemetry.Tracer
	reg *telemetry.Registry

	kernelLaunches *telemetry.Counter
	freqSwitches   *telemetry.Counter
	switchLatency  *telemetry.Histogram
	stepsTotal     *telemetry.Counter
	stepTime       *telemetry.Histogram
	stepEnergy     *telemetry.Histogram
	mpiWait        *telemetry.Counter
	nbrRebuilds    *telemetry.Counter

	// fnTime memoizes the per-function phase-latency histograms, labeled by
	// function name and registered lazily on first observation (pipelines
	// are not known until the loop runs). Coordinator-goroutine only.
	fnTime map[string]*telemetry.Histogram

	// Interned span identities for the per-phase spans, memoized per call
	// site so the steady-state loop records through SpanRefs only. These
	// maps are touched by the coordinator goroutine alone.
	fnRefs   map[string]telemetry.SpanRef // fn name → "function" span
	hostRefs map[string]telemetry.SpanRef // fn name → "host:"+name span
	commRefs map[string]telemetry.SpanRef // comm label → "mpi" span

	// curFnName/curFnRef short-circuit fnRefs for the common case: the
	// attribution loop emits one span per rank for the same function, so
	// only the first rank of a phase pays the map lookup.
	curFnName string
	curFnRef  telemetry.SpanRef

	// observers collects the per-rank device observers so step-boundary
	// flushes can fold their goroutine-local kernel counts into the
	// registry without the ranks contending on one counter mid-phase.
	observers     []*rankObserver
	kernelFlushed float64
}

// newRunTelemetry wires the tracer and registry for a run, labeling rank
// tracks and registering the metric families up front so hot-path updates
// are pure atomic/shard operations.
func newRunTelemetry(cfg Config) *runTelemetry {
	if cfg.Tracer == nil && cfg.Metrics == nil {
		return nil
	}
	rt := &runTelemetry{tr: cfg.Tracer, reg: cfg.Metrics}
	if rt.tr != nil {
		for r := 0; r < cfg.Ranks; r++ {
			rt.tr.SetTrackName(r, fmt.Sprintf("rank %d", r))
		}
		rt.tr.SetTrackName(telemetry.GlobalTrack, "sim")
		rt.fnRefs = map[string]telemetry.SpanRef{}
		rt.hostRefs = map[string]telemetry.SpanRef{}
		rt.commRefs = map[string]telemetry.SpanRef{}
	}
	rt.kernelLaunches = rt.reg.Counter("kernel_launches_total",
		"GPU kernel batches executed across all ranks")
	rt.freqSwitches = rt.reg.Counter("freq_switches_total",
		"application-clock set operations across all ranks")
	rt.switchLatency = rt.reg.Histogram("freq_switch_latency_s",
		"wall-clock latency of clock-control calls",
		telemetry.ExpBuckets(1e-7, 10, 8))
	rt.stepsTotal = rt.reg.Counter("steps_total", "completed simulation steps")
	rt.stepTime = rt.reg.Histogram("step_time_s",
		"virtual wall time per step", telemetry.ExpBuckets(0.1, 2, 12))
	rt.stepEnergy = rt.reg.Histogram("step_energy_j",
		"allocation energy per step", telemetry.ExpBuckets(1, 10, 9))
	rt.mpiWait = rt.reg.Counter("mpi_wait_s_total",
		"cumulative barrier wait time across all ranks")
	rt.nbrRebuilds = rt.reg.Counter("neighbor_rebuilds_total",
		"steps whose FindNeighbors phase rebuilt the neighbor candidate list")
	if rt.reg != nil {
		rt.fnTime = map[string]*telemetry.Histogram{}
	}
	if every := cfg.NeighborRebuildEvery; every > 1 {
		rt.reg.Gauge("neighbor_rebuild_interval_steps",
			"configured Verlet-skin rebuild cadence (1 = rebuild every step)").Set(float64(every))
	} else {
		rt.reg.Gauge("neighbor_rebuild_interval_steps",
			"configured Verlet-skin rebuild cadence (1 = rebuild every step)").Set(1)
	}
	return rt
}

// neighborRebuild records a step whose FindNeighbors phase performs a full
// candidate-list rebuild (as opposed to a Verlet-skin refresh).
func (rt *runTelemetry) neighborRebuild() {
	if rt == nil {
		return
	}
	rt.nbrRebuilds.Inc()
}

// instrumentRank attaches the device observer, wraps the clock setter, and
// wraps the strategy of one rank so kernels, frequency changes, and
// strategy decisions flow into the tracer and registry.
func (rt *runTelemetry) instrumentRank(rc *rankCtx, rank int) {
	if rt == nil {
		return
	}
	obs := &rankObserver{rank: rank, rt: rt}
	if rt.reg != nil {
		obs.clock = rt.reg.Gauge("gpu_clock_mhz",
			"current SM application clock", telemetry.L("rank", strconv.Itoa(rank)))
	}
	if rt.tr != nil {
		obs.kernelRefs = map[string]telemetry.SpanRef{}
	}
	rt.observers = append(rt.observers, obs)
	rc.dev.SetObserver(obs)
	rc.setter = freqctl.InstrumentedSetter{
		Inner: rc.setter,
		OnSet: func(requestedMHz, appliedMHz int, latencyS float64, err error) {
			rt.freqSwitches.Inc()
			rt.switchLatency.Observe(latencyS)
		},
	}
	if rt.tr != nil {
		// Strategy decisions only feed the tracer; metrics-only runs skip
		// the capture wrapper entirely.
		rc.strategy = &freqctl.Traced{
			Inner: rc.strategy,
			Sink: &rankDecisionSink{rank: rank, rt: rt, dev: rc.dev,
				refs: map[string]telemetry.SpanRef{}},
		}
	}
}

// rankObserver forwards one device's events onto its rank track. Each
// observer serves one rank's goroutine: kernelRefs and the kernels cell
// are written without cross-rank sharing, so kernel launches never
// contend on a global counter mid-phase (the coordinator folds the cells
// into kernel_launches_total at step boundaries).
type rankObserver struct {
	rank       int
	rt         *runTelemetry
	clock      *telemetry.Gauge
	kernelRefs map[string]telemetry.SpanRef // kernel name → interned span
	kernels    atomic.Int64                 // launches on this rank so far
}

// KernelLaunched implements gpusim.Observer.
func (o *rankObserver) KernelLaunched(name string, startS, durS float64, clockMHz int, energyJ float64) {
	if o.rt.tr != nil {
		ref, ok := o.kernelRefs[name]
		if !ok {
			ref = o.rt.tr.Intern("kernel", name, "clock_mhz", "energy_j")
			o.kernelRefs[name] = ref
		}
		o.rt.tr.CompleteRef(o.rank, ref, startS, durS, float64(clockMHz), energyJ)
	}
	o.kernels.Add(1)
}

// ClockChanged implements gpusim.Observer.
func (o *rankObserver) ClockChanged(timeS float64, clockMHz int, cause string) {
	o.rt.tr.Instant(o.rank, "freq", "freq-change", timeS,
		telemetry.Int("mhz", clockMHz), telemetry.String("cause", cause))
	o.clock.Set(float64(clockMHz))
}

// rankDecisionSink records frequency-strategy decisions as instant events.
// Like the observer, one sink serves one rank's goroutine; refs memoizes
// the interned "decision:<fn>" identities.
type rankDecisionSink struct {
	rank int
	rt   *runTelemetry
	dev  *gpusim.Device
	refs map[string]telemetry.SpanRef
}

// StrategyDecision implements freqctl.DecisionSink. Elided switches
// (requestedMHz < 0) are skipped: the interesting events are the actual
// clock transitions ManDyn issues at function boundaries.
func (s *rankDecisionSink) StrategyDecision(function string, requestedMHz, appliedMHz int) {
	if requestedMHz < 0 {
		return
	}
	ref, ok := s.refs[function]
	if !ok {
		ref = s.rt.tr.Intern("freqctl", "decision:"+function, "requested_mhz", "applied_mhz")
		s.refs[function] = ref
	}
	s.rt.tr.InstantRef(s.rank, ref, s.dev.Now(), float64(requestedMHz), float64(appliedMHz))
}

// waitRecorder adapts the tracer to mpisim.SpanRecorder. mpisim emits one
// span identity (the barrier wait), so it is interned at wiring time and
// every record goes straight to the fast path; anything else falls back to
// the tracer's general entry point.
type waitRecorder struct {
	tr  *telemetry.Tracer
	ref telemetry.SpanRef
}

// RecordSpan implements mpisim.SpanRecorder.
func (w waitRecorder) RecordSpan(rank int, category, name string, startS, durS float64) {
	if category == "mpi" && name == "barrier-wait" {
		w.tr.CompleteRef(rank, w.ref, startS, durS, 0, 0)
		return
	}
	w.tr.RecordSpan(rank, category, name, startS, durS)
}

// spanRecorder returns the world's span recorder, or nil when tracing is
// off.
func (rt *runTelemetry) spanRecorder() mpisim.SpanRecorder {
	if rt == nil || rt.tr == nil {
		return nil
	}
	return waitRecorder{tr: rt.tr, ref: rt.tr.Intern("mpi", "barrier-wait")}
}

// attachTraceSink mirrors the rank's frequency/power trace into counter
// tracks of the tracer, so the Fig. 9 trajectory renders alongside the
// spans in the same timeline.
func (rt *runTelemetry) attachTraceSink(trace *gpusim.Trace, rank int) {
	if rt == nil || rt.tr == nil || trace == nil {
		return
	}
	tr := rt.tr
	trace.SetSink(func(p gpusim.TracePoint) {
		tr.Counter(rank, "gpu_clock_mhz", p.TimeS, telemetry.Int("mhz", p.ClockMHz))
		tr.Counter(rank, "gpu_power_w", p.TimeS, telemetry.Float("watts", p.PowerW))
	})
}

// functionSpan records one rank's span for a finished function phase. The
// timestamps derive from values the runner computed anyway, so
// instrumentation adds no extra clock queries.
func (rt *runTelemetry) functionSpan(rank int, fn FuncModel, startS, durS, gpuJ, commS float64) {
	if rt == nil || rt.tr == nil {
		return
	}
	if fn.Name != rt.curFnName {
		ref, ok := rt.fnRefs[fn.Name]
		if !ok {
			ref = rt.tr.Intern("function", fn.Name, "gpu_j", "comm_s")
			rt.fnRefs[fn.Name] = ref
		}
		rt.curFnName, rt.curFnRef = fn.Name, ref
	}
	rt.tr.CompleteRef(rank, rt.curFnRef, startS, durS, gpuJ, commS)
}

// phaseTailSpans records the post-barrier communication and host-serial
// spans of a phase. After Synchronize every rank clock sits at the same
// barrier time and the comm/host tail is global, so the spans would be
// byte-identical on every rank track — they are recorded once on the
// global track instead, nesting under the step span. This keeps trace
// volume per phase O(1) in the rank count.
func (rt *runTelemetry) phaseTailSpans(fn FuncModel, endS, commS, hostS float64) {
	if rt == nil || rt.tr == nil {
		return
	}
	syncT := endS - commS - hostS
	if commS > 0 {
		label := commLabel(fn.Comm)
		ref, ok := rt.commRefs[label]
		if !ok {
			ref = rt.tr.Intern("mpi", label)
			rt.commRefs[label] = ref
		}
		rt.tr.CompleteRef(telemetry.GlobalTrack, ref, syncT, commS, 0, 0)
	}
	if hostS > 0 {
		ref, ok := rt.hostRefs[fn.Name]
		if !ok {
			ref = rt.tr.Intern("host", "host:"+fn.Name)
			rt.hostRefs[fn.Name] = ref
		}
		rt.tr.CompleteRef(telemetry.GlobalTrack, ref, syncT+commS, hostS, 0, 0)
	}
}

// functionTime observes one finished function phase's duration in the
// per-function latency histogram, giving p50/p95/p99 per pipeline pass on
// the exposition endpoints. Observed once per phase (not per rank): the
// phase duration is global after the barrier.
func (rt *runTelemetry) functionTime(name string, durS float64) {
	if rt == nil || rt.reg == nil {
		return
	}
	h, ok := rt.fnTime[name]
	if !ok {
		h = rt.reg.Histogram("function_time_s",
			"virtual wall time per function phase (kernel + barrier + comm + host tail)",
			telemetry.LatencyBuckets(), telemetry.L("function", name))
		rt.fnTime[name] = h
	}
	h.Observe(durS)
}

// phaseWaits accounts the barrier wait times of one phase.
func (rt *runTelemetry) phaseWaits(waits []float64) {
	if rt == nil {
		return
	}
	total := 0.0
	for _, w := range waits {
		total += w
	}
	rt.mpiWait.Add(total)
}

// commLabel names a communication pattern for the trace.
func commLabel(k CommKind) string {
	switch k {
	case CommHalo:
		return "halo-exchange"
	case CommAllreduce:
		return "allreduce"
	case CommDomainSync:
		return "domain-sync"
	}
	return "sync"
}

// stepSpan closes out one simulation step on the global track and folds
// the ranks' kernel-launch cells into the registry.
func (rt *runTelemetry) stepSpan(step int, startS, endS, energyJ float64) {
	if rt == nil {
		return
	}
	if rt.tr != nil {
		rt.tr.Complete(telemetry.GlobalTrack, "step", "step "+strconv.Itoa(step),
			startS, endS-startS, telemetry.Float("energy_j", energyJ))
	}
	rt.stepsTotal.Inc()
	rt.stepTime.Observe(endS - startS)
	rt.stepEnergy.Observe(energyJ)
	if rt.reg != nil {
		total := 0.0
		for _, o := range rt.observers {
			total += float64(o.kernels.Load())
		}
		rt.kernelLaunches.Add(total - rt.kernelFlushed)
		rt.kernelFlushed = total
	}
}

// finish records the run-level summary gauges.
func (rt *runTelemetry) finish(wallS float64, report *reportTotals) {
	if rt == nil || rt.reg == nil {
		return
	}
	rt.reg.Gauge("wall_time_s", "time-to-solution of the stepping loop").Set(wallS)
	eg := func(class string, j float64) {
		rt.reg.Gauge("energy_total_j", "loop energy by device class",
			telemetry.L("class", class)).Set(j)
	}
	eg("gpu", report.gpuJ)
	eg("cpu", report.cpuJ)
	eg("mem", report.memJ)
	eg("other", report.otherJ)
}

// reportTotals carries the per-class loop energy into finish.
type reportTotals struct {
	gpuJ, cpuJ, memJ, otherJ float64
}
