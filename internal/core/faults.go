package core

import (
	"fmt"

	"sphenergy/internal/cluster"
	"sphenergy/internal/faults"
	"sphenergy/internal/freqctl"
	"sphenergy/internal/gpusim"
	"sphenergy/internal/mpisim"
	"sphenergy/internal/nvml"
	"sphenergy/internal/pmcounters"
	"sphenergy/internal/pmt"
	"sphenergy/internal/rsmi"
	"sphenergy/internal/sampler"
	"sphenergy/internal/telemetry"
)

// Degradation policies for injected rank failures (Config.Degradation).
const (
	// DegradeAbort stops the run at the first rank failure (the MPI
	// default: one dead rank aborts the job). The runner still resets
	// clocks and flushes the sampler before returning the error.
	DegradeAbort = "abort"
	// DegradeDropRank continues without the dead rank; its particles are
	// lost from the simulation but the measurement pipeline stays sound.
	DegradeDropRank = "drop-rank"
	// DegradeRedistribute continues with the dead rank's load spread over
	// the survivors (particles-per-rank scaled by ranks/alive).
	DegradeRedistribute = "redistribute"
)

// validPolicy reports whether p names a degradation policy ("" = abort).
func validPolicy(p string) bool {
	switch p {
	case "", DegradeAbort, DegradeDropRank, DegradeRedistribute:
		return true
	}
	return false
}

// RankFailure aliases the fault framework's rank-death record.
type RankFailure = faults.RankFailure

// FaultReport aliases faults.Report, the run-level fault/resilience
// summary attached to Result and instr.Report.
type FaultReport = faults.Report

// faultState wires one run's fault plan: the per-target injectors (one
// deterministic stream per rank sensor, rank clock path, rank execution,
// and node sensor), the resilient setters wrapped around each rank's
// clock control, and the failures the degradation policy has handled.
type faultState struct {
	plan      *faults.Plan
	policy    string
	sensorInj []*faults.Injector
	clockInj  []*faults.Injector
	rankInj   []*faults.Injector
	nodeInj   []*faults.Injector
	resilient []*freqctl.ResilientSetter
	failures  []RankFailure
}

// newFaultState builds the injector sets for a run, or nil when the
// config has no active plan — the healthy path stays exactly the seed
// behaviour (no resilient wrapper, no hooks, no per-phase evaluation).
func newFaultState(cfg Config, nodes int) *faultState {
	if !cfg.Faults.Active() {
		return nil
	}
	fs := &faultState{
		plan:   cfg.Faults,
		policy: cfg.Degradation,
	}
	if fs.policy == "" {
		fs.policy = DegradeAbort
	}
	for r := 0; r < cfg.Ranks; r++ {
		fs.sensorInj = append(fs.sensorInj, cfg.Faults.Injector(faults.TargetSensor, r))
		fs.clockInj = append(fs.clockInj, cfg.Faults.Injector(faults.TargetClock, r))
		fs.rankInj = append(fs.rankInj, cfg.Faults.Injector(faults.TargetRank, r))
	}
	for n := 0; n < nodes; n++ {
		fs.nodeInj = append(fs.nodeInj, cfg.Faults.Injector(faults.TargetNodeSensor, n))
	}
	return fs
}

// sensorHook returns the fault hook for rank r's GPU sensor (nil without
// a plan), clocked by the rank's own device.
func (fs *faultState) sensorHook(r int, dev *gpusim.Device) func(string, int) (int, error) {
	if fs == nil {
		return nil
	}
	return fs.sensorInj[r].SensorHook(dev.Now)
}

// wireRank installs the clock-path fault hook underneath rank r's setter
// and wraps it in the resilience layer. Must run before telemetry
// instrumentation so the instrumented view sees the resilient semantics.
func (fs *faultState) wireRank(rc *rankCtx, r int, cfg Config) {
	if fs == nil {
		return
	}
	if h := fs.clockInj[r].ClockHook(rc.dev.Now); h != nil {
		freqctl.AttachFaultHook(rc.setter, h)
	}
	rcfg := cfg.Resilience
	if rcfg.Seed == 0 {
		rcfg.Seed = cfg.Seed ^ (uint64(r+1) * 0x9E3779B97F4A7C15)
	}
	rs := freqctl.NewResilientSetter(rc.setter, rcfg)
	fs.resilient = append(fs.resilient, rs)
	rc.setter = rs
}

// nodeSensor builds node i's pm_counters sensor, faulted when a plan is
// active. The node stream is clocked by the job's global virtual time.
func (fs *faultState) nodeSensor(i int, node *cluster.Node, now func() float64) pmt.Sensor {
	pc := pmcounters.New(node)
	if fs != nil {
		if h := fs.nodeInj[i].SensorHook(now); h != nil {
			pc.SetFaultHook(h)
		}
	}
	return pmt.NewCrayOn(pc, node, pmt.CrayNode, 0)
}

// wireWorld installs the straggler/crash hook on the MPI world. step
// reads the coordinator's current step; the channel handoff into the
// rank workers orders those reads after the coordinator's writes.
func (fs *faultState) wireWorld(world *mpisim.World, ranks []*rankCtx, step func() int) {
	if fs == nil {
		return
	}
	world.SetRankFaultHook(func(r int, nowS float64) mpisim.RankFault {
		d := fs.rankInj[r].Evaluate(nowS, step(), faults.Straggler, faults.RankCrash)
		switch d.Kind {
		case faults.Straggler:
			return mpisim.RankFault{SlowFactor: d.Rule.Factor}
		case faults.RankCrash:
			return mpisim.RankFault{Crash: true}
		}
		return mpisim.RankFault{}
	})
	// A straggling rank's GPU idles through the stall, keeping the device
	// clock aligned with the rank clock (the observer runs on the rank's
	// own worker goroutine, which owns the device).
	world.SetStragglerObserver(func(r int, extraS float64) {
		ranks[r].dev.Idle(extraS)
	})
}

// checkStep performs the step-level failure detection: new rank deaths
// are recorded with the step, and the degradation policy decides whether
// the run continues. It returns the survivor load multiplier (>1 under
// redistribution) and a non-nil error when the run must stop.
func (fs *faultState) checkStep(world *mpisim.World, step, totalRanks int) (float64, error) {
	if fs == nil {
		return 1, nil
	}
	fails := world.Failures()
	for _, f := range fails[len(fs.failures):] {
		fs.failures = append(fs.failures, RankFailure{Rank: f.Rank, TimeS: f.TimeS, Step: step})
	}
	alive := world.AliveCount()
	if alive == 0 {
		return 1, fmt.Errorf("core: all %d ranks failed by step %d", totalRanks, step)
	}
	if len(fs.failures) > 0 && fs.policy == DegradeAbort {
		f := fs.failures[len(fs.failures)-1]
		return 1, fmt.Errorf("core: rank %d failed at step %d (t=%.3f s); degradation policy %q aborts the run",
			f.Rank, f.Step, f.TimeS, DegradeAbort)
	}
	if fs.policy == DegradeRedistribute {
		return float64(totalRanks) / float64(alive), nil
	}
	return 1, nil
}

// report assembles the run's FaultReport and exports the fault counters
// into the metrics registry.
func (fs *faultState) report(smp *sampler.Sampler, reg *telemetry.Registry) *FaultReport {
	if fs == nil {
		return nil
	}
	injectors := fs.injectors()
	rep := &FaultReport{
		Plan:        fs.plan.Name,
		Degradation: fs.policy,
		Injected:    faults.CollectCounts(injectors...),
		Failures:    fs.failures,
	}
	for _, rs := range fs.resilient {
		st := rs.Stats()
		rep.Retries += st.Retries
		rep.Absorbed += st.Absorbed
		rep.Clamped += st.Clamped
		rep.ShortCircuits += st.ShortCircuits
		rep.BreakerTrips += st.BreakerTrips
		if st.Broken {
			rep.BrokenRanks++
		}
	}
	if smp != nil {
		rep.SamplerDegraded = smp.Degraded()
	}
	for _, ic := range rep.Injected {
		reg.Counter("faults_injected_total", "fault injections by target stream and kind",
			telemetry.L("stream", ic.Stream), telemetry.L("kind", string(ic.Kind))).Add(float64(ic.Count))
	}
	reg.Counter("freqctl_retries_total", "clock-control retries across all ranks").Add(float64(rep.Retries))
	reg.Counter("freqctl_absorbed_total", "clock-control failures absorbed after retry exhaustion").Add(float64(rep.Absorbed))
	reg.Counter("freqctl_clamped_total", "clock sets whose achieved clock differed from the request").Add(float64(rep.Clamped))
	reg.Counter("freqctl_breaker_trips_total", "circuit-breaker latches across all ranks").Add(float64(rep.BreakerTrips))
	reg.Counter("ranks_failed_total", "injected rank deaths").Add(float64(len(rep.Failures)))
	return rep
}

// faultedSensorFor builds the rank GPU sensor with the fault hook
// installed on its vendor library (the same injection point a real
// deployment faces: the read syscall, not the PMT wrapper).
func faultedSensorFor(dev *gpusim.Device, hook func(string, int) (int, error)) pmt.Sensor {
	switch dev.Spec().Vendor {
	case gpusim.AMD:
		lib, err := rsmi.New([]*gpusim.Device{dev})
		if err == nil {
			if hook != nil {
				lib.SetFaultHook(hook)
			}
			return pmt.NewRSMI(lib, 0, dev)
		}
	default:
		lib, err := nvml.New([]*gpusim.Device{dev})
		if err == nil && lib.Init() == nil {
			if hook != nil {
				lib.SetFaultHook(hook)
			}
			if h, err := lib.DeviceGetHandleByIndex(0); err == nil {
				return pmt.NewNVML(h)
			}
		}
	}
	return pmt.Dummy{}
}
