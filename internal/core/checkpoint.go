package core

import (
	"bytes"
	"encoding/gob"
	"encoding/json"
	"fmt"
	"io"

	"sphenergy/internal/cluster"
	"sphenergy/internal/faults"
	"sphenergy/internal/freqctl"
	"sphenergy/internal/mpisim"
	"sphenergy/internal/recovery"
)

// RunRecovery wires a run into the recovery layer. Controller receives the
// step-boundary hooks (autosave, watchdog heartbeat, budget checks);
// Resume, when non-nil, is the snapshot the run restores before stepping.
// Both are normally provided by recovery.Supervise via RunSupervised, but
// a caller wanting durability without supervision can construct them
// directly.
type RunRecovery struct {
	Controller *recovery.Controller
	Resume     *recovery.Resume
}

// RecoveryInfo is the Result-level recovery summary.
type RecoveryInfo struct {
	// Resumed/ResumeStep describe the restore this run started from.
	Resumed    bool
	ResumeStep int
	// Checkpoints is how many snapshots this attempt wrote; LastCheckpoint
	// is the newest one's path.
	Checkpoints    int
	LastCheckpoint string
	// Stopped/StopCause describe a graceful early stop (budget or signal).
	Stopped   bool
	StopCause string
}

// checkpointVersion guards the gob payload layout, separately from the
// store's envelope version: the envelope knows bytes, this knows fields.
const checkpointVersion = 1

// runFingerprint pins a checkpoint to the configuration that produced it.
// Restoring under any other configuration would silently diverge, so a
// mismatch is an error, not a warning.
type runFingerprint struct {
	Version          int
	Sim              string
	System           string
	Ranks            int
	Steps            int
	ParticlesPerRank float64
	Ng               int
	Seed             uint64
	JitterSpread     float64
	HostOverheadS    float64
	SetupS           float64
	Strategy         string
	NbrRebuildEvery  int
	NbrRefreshCost   float64
	Degradation      string
	FaultPlan        string
	CustomFuncs      int
}

func fingerprintOf(cfg Config, strategyName string) runFingerprint {
	fp := runFingerprint{
		Version:          checkpointVersion,
		Sim:              string(cfg.Sim),
		System:           cfg.System.Name,
		Ranks:            cfg.Ranks,
		Steps:            cfg.Steps,
		ParticlesPerRank: cfg.ParticlesPerRank,
		Ng:               cfg.Ng,
		Seed:             cfg.Seed,
		JitterSpread:     cfg.JitterSpread,
		HostOverheadS:    cfg.HostOverheadScale,
		SetupS:           cfg.SetupS,
		Strategy:         strategyName,
		NbrRebuildEvery:  cfg.NeighborRebuildEvery,
		NbrRefreshCost:   cfg.NeighborRefreshCost,
		Degradation:      cfg.Degradation,
		CustomFuncs:      len(cfg.CustomPipeline),
	}
	if cfg.Faults.Active() {
		fp.FaultPlan = cfg.Faults.Name
	}
	return fp
}

// strategyState is one rank's frequency-strategy checkpoint. Only ManDyn
// carries mutable state (the redundant-set elision clocks); the static
// strategies are pure functions of their config.
type strategyState struct {
	IsManDyn    bool
	LastReqMHz  int
	LastApplied int
}

// setupEnergies is the job-setup phase's energy carve-out, needed by the
// report builder to keep loop-only totals correct across a restore.
type setupEnergies struct {
	GPU, CPU, Mem, Other, Total float64
}

// runCheckpoint is the complete restorable state of a run at a step
// boundary. Everything the model's forward evolution reads is here; pure
// observability (tracer spans, metrics, sampler rings, ledger) is
// deliberately not — a resumed run's *model* is bit-identical, while its
// observability streams document each attempt separately.
type runCheckpoint struct {
	Fp runFingerprint

	// NextStep is the first step the restored run executes.
	NextStep int
	// T0 is the virtual time at loop start of the original attempt, so
	// wall time spans attempts.
	T0         float64
	StepBounds []float64
	// Load is the survivor load multiplier at the boundary.
	Load  float64
	Setup setupEnergies

	World mpisim.WorldState
	Nodes []cluster.NodeState
	// Profiles carries each rank's instr.RankProfile as its canonical JSON
	// wire form (function order preserved; Go's float formatting is exact
	// round-trip, so restored profiles are bit-identical).
	Profiles   [][]byte
	Strategies []strategyState
	// Resilient and Injectors are present only when a fault plan was
	// active; injector states are ordered sensor, clock, rank, node.
	Resilient []freqctl.ResilientState
	Injectors []faults.InjectorState
	Failures  []RankFailure
}

// captureCheckpoint snapshots the run between steps. The coordinator calls
// it while all rank workers are idle, so every State() sees a quiescent
// model.
func captureCheckpoint(cfg Config, system *cluster.System, world *mpisim.World,
	ranks []*rankCtx, fs *faultState, nextStep int, t0 float64,
	stepBounds []float64, load float64, setup setupEnergies) (*runCheckpoint, error) {

	cp := &runCheckpoint{
		Fp:         fingerprintOf(cfg, ranks[0].strategy.Name()),
		NextStep:   nextStep,
		T0:         t0,
		StepBounds: append([]float64(nil), stepBounds...),
		Load:       load,
		Setup:      setup,
		World:      world.State(),
	}
	for _, n := range system.Nodes {
		cp.Nodes = append(cp.Nodes, n.State())
	}
	for _, rc := range ranks {
		b, err := json.Marshal(rc.profile)
		if err != nil {
			return nil, fmt.Errorf("core: checkpoint profile rank %d: %w", rc.profile.Rank, err)
		}
		cp.Profiles = append(cp.Profiles, b)
		var ss strategyState
		if md, ok := freqctl.UnwrapStrategy(rc.strategy).(*freqctl.ManDyn); ok {
			ss.IsManDyn = true
			ss.LastReqMHz, ss.LastApplied = md.State()
		}
		cp.Strategies = append(cp.Strategies, ss)
	}
	if fs != nil {
		for _, rs := range fs.resilient {
			cp.Resilient = append(cp.Resilient, rs.State())
		}
		for _, in := range fs.injectors() {
			cp.Injectors = append(cp.Injectors, in.State())
		}
		cp.Failures = append([]RankFailure(nil), fs.failures...)
	}
	return cp, nil
}

// encode writes the checkpoint as a gob stream (the store wraps it in the
// checksummed envelope).
func (cp *runCheckpoint) encode(w io.Writer) error {
	return gob.NewEncoder(w).Encode(cp)
}

// decodeCheckpoint parses a store payload back into a checkpoint.
func decodeCheckpoint(payload []byte) (*runCheckpoint, error) {
	var cp runCheckpoint
	if err := gob.NewDecoder(bytes.NewReader(payload)).Decode(&cp); err != nil {
		return nil, fmt.Errorf("core: decode checkpoint: %w", err)
	}
	return &cp, nil
}

// resumedState is what the runner's loop needs back after a restore.
type resumedState struct {
	nextStep   int
	t0         float64
	stepBounds []float64
	load       float64
	setup      setupEnergies
}

// restoreRun installs a checkpoint into a freshly constructed run. It must
// run after rank construction (setters, strategies, fault wiring) and
// before the sampler's baseline poll and the setup phase, both of which
// the resumed run skips — the restored state already contains their
// effects.
func restoreRun(resume *recovery.Resume, cfg Config, system *cluster.System,
	world *mpisim.World, ranks []*rankCtx, fs *faultState) (*resumedState, error) {

	cp, err := decodeCheckpoint(resume.Payload)
	if err != nil {
		return nil, err
	}
	want := fingerprintOf(cfg, ranks[0].strategy.Name())
	if cp.Fp != want {
		return nil, fmt.Errorf("core: checkpoint %s was written by a different configuration (have %+v, want %+v)",
			resume.Snapshot.Path, cp.Fp, want)
	}
	if cp.NextStep < 0 || cp.NextStep > cfg.Steps {
		return nil, fmt.Errorf("core: checkpoint next step %d outside run of %d steps", cp.NextStep, cfg.Steps)
	}
	if len(cp.Nodes) != len(system.Nodes) || len(cp.Profiles) != len(ranks) || len(cp.Strategies) != len(ranks) {
		return nil, fmt.Errorf("core: checkpoint shape mismatch: %d nodes / %d profiles for %d nodes / %d ranks",
			len(cp.Nodes), len(cp.Profiles), len(system.Nodes), len(ranks))
	}

	if err := world.Restore(cp.World); err != nil {
		return nil, fmt.Errorf("core: restore world: %w", err)
	}
	for i, n := range system.Nodes {
		if err := n.Restore(cp.Nodes[i]); err != nil {
			return nil, fmt.Errorf("core: restore: %w", err)
		}
	}
	for r, rc := range ranks {
		// In-place unmarshal keeps the profile pointer every instrumentation
		// layer captured at construction.
		if err := json.Unmarshal(cp.Profiles[r], rc.profile); err != nil {
			return nil, fmt.Errorf("core: restore profile rank %d: %w", r, err)
		}
		rc.profile.SeriesEnabled = cfg.KeepSeries
		md, isMD := freqctl.UnwrapStrategy(rc.strategy).(*freqctl.ManDyn)
		if isMD != cp.Strategies[r].IsManDyn {
			return nil, fmt.Errorf("core: restore strategy rank %d: checkpoint and run disagree on ManDyn", r)
		}
		if isMD {
			md.SetState(cp.Strategies[r].LastReqMHz, cp.Strategies[r].LastApplied)
		}
	}
	if fs != nil {
		if len(cp.Resilient) != len(fs.resilient) {
			return nil, fmt.Errorf("core: restore: %d resilient-setter states for %d ranks",
				len(cp.Resilient), len(fs.resilient))
		}
		for r, rs := range fs.resilient {
			rs.RestoreState(cp.Resilient[r])
		}
		injectors := fs.injectors()
		if len(cp.Injectors) != len(injectors) {
			return nil, fmt.Errorf("core: restore: %d injector states for %d injectors",
				len(cp.Injectors), len(injectors))
		}
		for i, in := range injectors {
			if err := in.Restore(cp.Injectors[i]); err != nil {
				return nil, fmt.Errorf("core: restore: %w", err)
			}
		}
		// A step-pinned rank crash that killed the previous attempt would
		// re-fire on replay and wedge recovery; disarm them (transient-crash
		// semantics — the restart models a repaired rank).
		for _, in := range fs.rankInj {
			in.DisarmPinnedCrashes()
		}
		fs.failures = append(fs.failures[:0], cp.Failures...)
	} else if len(cp.Resilient) > 0 || len(cp.Injectors) > 0 {
		return nil, fmt.Errorf("core: checkpoint carries fault state but the run has no fault plan")
	}

	return &resumedState{
		nextStep:   cp.NextStep,
		t0:         cp.T0,
		stepBounds: append([]float64(nil), cp.StepBounds...),
		load:       cp.Load,
		setup:      cp.Setup,
	}, nil
}

// injectors returns every injector of the run in checkpoint order:
// sensor, clock, rank, node.
func (fs *faultState) injectors() []*faults.Injector {
	var all []*faults.Injector
	all = append(all, fs.sensorInj...)
	all = append(all, fs.clockInj...)
	all = append(all, fs.rankInj...)
	all = append(all, fs.nodeInj...)
	return all
}
