package core

import (
	"testing"

	"sphenergy/internal/gpusim"
)

func TestPipelineComposition(t *testing.T) {
	turb, err := Pipeline(Turbulence)
	if err != nil {
		t.Fatal(err)
	}
	evr, err := Pipeline(Evrard)
	if err != nil {
		t.Fatal(err)
	}
	if len(evr) != len(turb)+1 {
		t.Errorf("Evrard has %d functions, Turbulence %d; want exactly one more (Gravity)",
			len(evr), len(turb))
	}
	hasGravity := false
	for _, f := range evr {
		if f.Name == FnGravity {
			hasGravity = true
		}
	}
	if !hasGravity {
		t.Error("Evrard pipeline missing Gravity")
	}
	for _, f := range turb {
		if f.Name == FnGravity {
			t.Error("Turbulence pipeline must not include Gravity")
		}
	}
	if _, err := Pipeline(SimKind("sedov")); err == nil {
		t.Error("unknown pipeline accepted")
	}
}

func TestPipelineOrdering(t *testing.T) {
	names := PipelineFunctionNames(Turbulence)
	if names[0] != FnDomainDecomp {
		t.Errorf("first function %q, want DomainDecompAndSync", names[0])
	}
	if names[len(names)-1] != FnUpdate {
		t.Errorf("last function %q, want UpdateQuantities", names[len(names)-1])
	}
	// MomentumEnergy comes after IAD (it consumes divv/curlv).
	iad, me := -1, -1
	for i, n := range names {
		if n == FnIAD {
			iad = i
		}
		if n == FnMomentum {
			me = i
		}
	}
	if iad < 0 || me < 0 || me < iad {
		t.Error("MomentumEnergy must follow IADVelocityDivCurl")
	}
}

func TestKernelDescScalesWithParticles(t *testing.T) {
	fn := TurbulencePipeline()[0]
	small := fn.Kernel(1e6, 150, gpusim.Nvidia)
	large := fn.Kernel(2e6, 150, gpusim.Nvidia)
	if large.Items != 2*small.Items {
		t.Error("items not proportional to particle count")
	}
	if large.FlopsPerItem != small.FlopsPerItem {
		t.Error("per-item work should not depend on particle count")
	}
}

func TestKernelDescScalesWithNeighbors(t *testing.T) {
	var me FuncModel
	for _, f := range TurbulencePipeline() {
		if f.Name == FnMomentum {
			me = f
		}
	}
	k100 := me.Kernel(1e6, 100, gpusim.Nvidia)
	k200 := me.Kernel(1e6, 200, gpusim.Nvidia)
	if k200.FlopsPerItem <= k100.FlopsPerItem*1.5 {
		t.Error("neighbor-scaled flops not growing with ng")
	}
}

func TestVendorEfficiencyGap(t *testing.T) {
	// The paper's observation: MomentumEnergy is far less optimized on AMD,
	// the other kernels less so. Check that the ME time ratio AMD/Nvidia
	// exceeds the XMass ratio.
	var me, xm FuncModel
	for _, f := range TurbulencePipeline() {
		switch f.Name {
		case FnMomentum:
			me = f
		case FnXMass:
			xm = f
		}
	}
	amd := gpusim.MI250XGCD()
	nv := gpusim.A100SXM480GB()
	meRatio := me.Kernel(150e6, 150, gpusim.AMD).EstimateDuration(amd, amd.MaxSMClockMHz) /
		me.Kernel(150e6, 150, gpusim.Nvidia).EstimateDuration(nv, nv.MaxSMClockMHz)
	xmRatio := xm.Kernel(150e6, 150, gpusim.AMD).EstimateDuration(amd, amd.MaxSMClockMHz) /
		xm.Kernel(150e6, 150, gpusim.Nvidia).EstimateDuration(nv, nv.MaxSMClockMHz)
	if meRatio <= xmRatio {
		t.Errorf("ME AMD/Nvidia slowdown %v should exceed XMass slowdown %v", meRatio, xmRatio)
	}
}

func TestBetaOrdering(t *testing.T) {
	// MomentumEnergy and IAD are the frequency-sensitive kernels; the
	// light bookkeeping kernels are nearly insensitive (the basis of both
	// Fig. 2 and ManDyn's win).
	spec := gpusim.A100PCIE40GB()
	betas := map[string]float64{}
	for _, f := range TurbulencePipeline() {
		betas[f.Name] = f.Kernel(particles450, 150, gpusim.Nvidia).FrequencySensitivity(spec)
	}
	if betas[FnMomentum] < 0.45 {
		t.Errorf("MomentumEnergy beta %v, want >= 0.45", betas[FnMomentum])
	}
	if betas[FnIAD] < 0.45 {
		t.Errorf("IAD beta %v, want >= 0.45", betas[FnIAD])
	}
	for _, light := range []string{FnEOS, FnAVSwitches, FnUpdate, FnTimestep, FnDomainDecomp} {
		if betas[light] > 0.25 {
			t.Errorf("%s beta %v, want <= 0.25 (light kernel)", light, betas[light])
		}
	}
	if betas[FnMomentum] <= betas[FnXMass] {
		t.Error("MomentumEnergy must be more frequency-sensitive than XMass")
	}
}

const particles450 = 450 * 450 * 450

func TestLaunchPattern(t *testing.T) {
	for _, f := range TurbulencePipeline() {
		if f.Name == FnDomainDecomp && f.Launches < 16 {
			t.Error("DomainDecompAndSync should be a many-launch phase (Fig. 9)")
		}
	}
}

func TestHostUtilizationRanges(t *testing.T) {
	for _, f := range EvrardPipeline() {
		if f.CPUUtil < 0 || f.CPUUtil > 1 || f.MemUtil < 0 || f.MemUtil > 1 {
			t.Errorf("%s: host utilization out of range", f.Name)
		}
		if f.EffNvidia <= 0 || f.EffNvidia > 1 || f.EffAMD <= 0 || f.EffAMD > 1 {
			t.Errorf("%s: efficiency out of range", f.Name)
		}
	}
}
