package core

import (
	"testing"

	"sphenergy/internal/cluster"
	"sphenergy/internal/freqctl"
)

// calib450 runs the paper's single-A100 450³ Turbulence workload with a
// given strategy at reduced step count (ratios are step-count invariant).
func calib450(t *testing.T, mk func() freqctl.Strategy) *Result {
	t.Helper()
	res, err := Run(Config{
		System:           cluster.MiniHPC(),
		Ranks:            1,
		Sim:              Turbulence,
		ParticlesPerRank: particles450,
		Steps:            20,
		NewStrategy:      mk,
	})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestPaperHeadlineBands validates the quantitative claims of the paper's
// abstract and §IV-D against the simulated pipeline:
//
//   - dynamic per-function frequency setting (ManDyn) cuts GPU energy by
//     up to ~8% while limiting the slowdown to ~3% (paper: 7.82% / 2.95%);
//   - static down-scaling to 1005 MHz is substantially slower;
//   - the DVFS governor matches baseline performance but costs energy.
//
// Bands are deliberately loose: the substrate is a calibrated simulator,
// not the authors' testbed (see DESIGN.md §2).
func TestPaperHeadlineBands(t *testing.T) {
	if testing.Short() {
		t.Skip("calibration bands need the full 450^3 workload")
	}
	base := calib450(t, func() freqctl.Strategy { return freqctl.Baseline{} })
	st1005 := calib450(t, func() freqctl.Strategy { return freqctl.Static{MHz: 1005} })
	dvfs := calib450(t, func() freqctl.Strategy { return freqctl.DVFS{} })
	mandyn := calib450(t, func() freqctl.Strategy {
		return &freqctl.ManDyn{Table: map[string]int{
			// The table the Fig. 2 tuning produces (verified in the
			// experiments tests); pinned here so this test isolates the
			// runner behaviour from the tuner.
			FnMomentum: 1410, FnIAD: 1410,
			FnDomainDecomp: 1005, FnFindNeighbors: 1005, FnXMass: 1005,
			FnGradh: 1005, FnEOS: 1005, FnAVSwitches: 1005,
			FnTimestep: 1005, FnUpdate: 1005,
		}}
	})

	norm := func(r *Result) (time, energy, edp float64) {
		time = r.WallTimeS / base.WallTimeS
		energy = r.GPUEnergyJ() / base.GPUEnergyJ()
		return time, energy, time * energy
	}

	// ManDyn: the headline result.
	mt, me, medp := norm(mandyn)
	if mt < 1.0 || mt > 1.055 {
		t.Errorf("ManDyn time ratio %.4f, want (1.00, 1.055] (paper: 1.0295)", mt)
	}
	if me < 0.88 || me > 0.96 {
		t.Errorf("ManDyn energy ratio %.4f, want [0.88, 0.96] (paper: ~0.92)", me)
	}
	if medp >= 1.0 {
		t.Errorf("ManDyn EDP ratio %.4f, want < 1", medp)
	}

	// Static 1005 MHz: big slowdown, big energy cut, EDP near baseline.
	st, se, sedp := norm(st1005)
	if st < 1.10 || st > 1.30 {
		t.Errorf("static-1005 time ratio %.4f, want [1.10, 1.30]", st)
	}
	if se < 0.75 || se > 0.90 {
		t.Errorf("static-1005 energy ratio %.4f, want [0.75, 0.90]", se)
	}
	if sedp < 0.90 || sedp > 1.05 {
		t.Errorf("static-1005 EDP ratio %.4f, want [0.90, 1.05] (paper: 0.975)", sedp)
	}

	// ManDyn beats static on both time (strongly) and EDP.
	if mandyn.WallTimeS >= st1005.WallTimeS {
		t.Error("ManDyn should be faster than static-1005")
	}
	if medp >= sedp {
		t.Errorf("ManDyn EDP %.4f should beat static-1005 EDP %.4f (paper: 4%% better)", medp, sedp)
	}

	// DVFS: near-baseline time, above-baseline energy (§IV-D).
	dt, de, _ := norm(dvfs)
	if dt < 0.98 || dt > 1.06 {
		t.Errorf("DVFS time ratio %.4f, want ~1", dt)
	}
	if de <= 1.0 || de > 1.12 {
		t.Errorf("DVFS energy ratio %.4f, want > 1 (the governor's §IV-E waste)", de)
	}
}

// TestPerFunctionFig8Bands checks the per-function shape of Fig. 8:
// MomentumEnergy and IAD slow down by >20% at 1005 MHz with limited energy
// reductions, while light functions barely slow down and gain EDP.
func TestPerFunctionFig8Bands(t *testing.T) {
	if testing.Short() {
		t.Skip("calibration bands need the full 450^3 workload")
	}
	base := calib450(t, func() freqctl.Strategy { return freqctl.Baseline{} })
	low := calib450(t, func() freqctl.Strategy { return freqctl.Static{MHz: 1005} })

	ratio := func(fn string) (time, energy float64) {
		b := base.Report.FunctionTotal(fn)
		l := low.Report.FunctionTotal(fn)
		return l.TimeS / b.TimeS, l.GPUJ / b.GPUJ
	}

	for _, fn := range []string{FnMomentum, FnIAD} {
		tr, er := ratio(fn)
		if tr < 1.20 {
			t.Errorf("%s time ratio at 1005 = %.3f, want > 1.20 (paper: >20%%)", fn, tr)
		}
		if er < 0.80 || er > 0.92 {
			t.Errorf("%s energy ratio at 1005 = %.3f, want [0.80, 0.92] (paper: -13%%/-19%%)", fn, er)
		}
		if tr*er < 1.0 {
			t.Errorf("%s EDP at 1005 = %.3f, want >= 1 (limited benefit)", fn, tr*er)
		}
	}

	for _, fn := range []string{FnXMass, FnGradh, FnEOS, FnUpdate} {
		tr, er := ratio(fn)
		if tr > 1.15 {
			t.Errorf("%s time ratio %.3f, want <= 1.15 (light kernel)", fn, tr)
		}
		if edp := tr * er; edp > 0.95 {
			t.Errorf("%s EDP at 1005 = %.3f, want <= 0.95 (paper: >=10%% reduction)", fn, edp)
		}
	}
}

// TestCrossSystemFig45Bands checks the Fig. 4/5 shapes at 32 ranks: GPU
// dominates node energy, and MomentumEnergy's share of GPU energy is much
// larger on LUMI-G than on CSCS-A100.
func TestCrossSystemFig45Bands(t *testing.T) {
	if testing.Short() {
		t.Skip("cross-system bands run 32-rank allocations")
	}
	run := func(spec cluster.NodeSpec, sim SimKind, ppr float64) *Result {
		res, err := Run(Config{
			System: spec, Ranks: 32, Sim: sim, ParticlesPerRank: ppr, Steps: 20,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	lumi := run(cluster.LUMIG(), Turbulence, 150e6)
	cscs := run(cluster.CSCSA100(), Turbulence, 150e6)

	for name, r := range map[string]*Result{"LUMI-G": lumi, "CSCS-A100": cscs} {
		share := r.Report.GPUEnergyJ / r.Report.TotalEnergyJ
		if share < 0.65 || share < 0 || share > 0.85 {
			t.Errorf("%s GPU energy share %.3f, want [0.65, 0.85] (paper: 0.74-0.76)", name, share)
		}
	}

	meShare := func(r *Result) float64 {
		return r.Report.FunctionTotal(FnMomentum).GPUJ / r.Report.GPUEnergyJ
	}
	lumiME, cscsME := meShare(lumi), meShare(cscs)
	if lumiME <= cscsME+0.10 {
		t.Errorf("MomentumEnergy GPU-energy share LUMI %.3f vs CSCS %.3f: want LUMI larger by >= 10pp (paper: 45.8%% vs 25.3%%)",
			lumiME, cscsME)
	}
	// LUMI consumes substantially more total energy for the same problem.
	if lumi.Report.TotalEnergyJ < 1.3*cscs.Report.TotalEnergyJ {
		t.Errorf("LUMI total %.3g J should clearly exceed CSCS %.3g J (paper: 24.4 vs 12.5 MJ)",
			lumi.Report.TotalEnergyJ, cscs.Report.TotalEnergyJ)
	}
}
