package core

import (
	"encoding/json"
	"fmt"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"sphenergy/internal/cluster"
	"sphenergy/internal/events"
	"sphenergy/internal/faults"
	"sphenergy/internal/freqctl"
	"sphenergy/internal/recovery"
)

// recoverableConfig is a small multi-rank run exercising the checkpointed
// state surfaces: setup phase, ManDyn elision, Verlet-skin cadence, jitter.
func recoverableConfig() Config {
	return Config{
		System:               cluster.CSCSA100(),
		Ranks:                4,
		Sim:                  Turbulence,
		ParticlesPerRank:     10e6,
		Steps:                8,
		Seed:                 21,
		SetupS:               2,
		NeighborRebuildEvery: 3,
		NewStrategy: func() freqctl.Strategy {
			return &freqctl.ManDyn{Table: map[string]int{FnMomentum: 1005, FnGravity: 1110}}
		},
	}
}

// modelRecord flattens a Result's model truth — wall time, energies, step
// boundaries, per-rank profiles — into comparable bytes. Observability
// (trace, metrics, ledger, sampler) is excluded: it documents each attempt,
// while the model must be bit-identical across recovery.
func modelRecord(t *testing.T, res *Result) string {
	t.Helper()
	b, err := json.Marshal(map[string]any{
		"wall":     res.WallTimeS,
		"setup_j":  res.SetupEnergyJ,
		"bounds":   res.StepBoundariesS,
		"strategy": res.Report.Strategy,
		"gpu_j":    res.Report.GPUEnergyJ,
		"cpu_j":    res.Report.CPUEnergyJ,
		"mem_j":    res.Report.MemEnergyJ,
		"other_j":  res.Report.OtherEnergyJ,
		"total_j":  res.Report.TotalEnergyJ,
		"ranks":    res.Report.Ranks,
	})
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

func TestSupervisedCrashRecoveryBitIdentical(t *testing.T) {
	ref, err := Run(recoverableConfig())
	if err != nil {
		t.Fatal(err)
	}
	want := modelRecord(t, ref)

	for _, killStep := range []int{1, 4, 7} {
		t.Run(fmt.Sprintf("kill-step-%d", killStep), func(t *testing.T) {
			cfg := recoverableConfig()
			cfg.Faults = &faults.Plan{Name: "kill", Seed: 11, Rules: []faults.Rule{
				{Kind: faults.RankCrash, Target: faults.TargetRank, Ranks: []int{2}, Step: killStep},
			}}
			led := events.NewLedger(0)
			rcfg := recovery.Config{
				Dir:           t.TempDir(),
				AutosaveEvery: 1,
				MaxRestarts:   2,
				BackoffS:      0.001,
				Seed:          7,
				Events:        led,
			}
			res, out, err := RunSupervised(cfg, rcfg)
			if err != nil {
				t.Fatal(err)
			}
			if out.Status != recovery.StatusCompleted {
				t.Fatalf("status %q, want completed (outcome %+v)", out.Status, out)
			}
			if out.Restarts < 1 || !out.Resumed {
				t.Fatalf("crash at step %d did not force a restore: %+v", killStep, out)
			}
			if got := modelRecord(t, res); got != want {
				t.Errorf("recovered run diverged from uninterrupted reference\n got: %.120s...\nwant: %.120s...", got, want)
			}
			if res.Recovery == nil || !res.Recovery.Resumed || res.Recovery.Checkpoints == 0 {
				t.Errorf("Result.Recovery incomplete: %+v", res.Recovery)
			}
			sum := led.Summary()
			for _, typ := range []events.Type{events.CheckpointSave, events.CheckpointRestore, events.Restart} {
				if sum.ByType[typ] == 0 {
					t.Errorf("ledger missing %s events: %+v", typ, sum.ByType)
				}
			}
		})
	}
}

func TestSupervisedBudgetStopThenResumeCompletes(t *testing.T) {
	ref, err := Run(recoverableConfig())
	if err != nil {
		t.Fatal(err)
	}
	want := modelRecord(t, ref)

	dir := t.TempDir()
	led := events.NewLedger(0)
	rcfg := recovery.Config{
		Dir:             dir,
		AutosaveEvery:   2,
		Seed:            7,
		WalltimeBudgetS: ref.WallTimeS * 0.5,
		Events:          led,
	}
	res1, out1, err := RunSupervised(recoverableConfig(), rcfg)
	if err != nil {
		t.Fatal(err)
	}
	if out1.Status != recovery.StatusStopped || out1.StopCause != recovery.StopWalltimeBudget {
		t.Fatalf("budget run ended %q/%q, want stopped/%s", out1.Status, out1.StopCause, recovery.StopWalltimeBudget)
	}
	if res1.Recovery == nil || !res1.Recovery.Stopped || res1.Recovery.LastCheckpoint == "" {
		t.Fatalf("budget stop left no final checkpoint: %+v", res1.Recovery)
	}
	if n := len(res1.StepBoundariesS); n == 0 || n >= recoverableConfig().Steps {
		t.Fatalf("budget stop ran %d steps, want a strict partial run", n)
	}
	if led.Summary().ByType[events.BudgetStop] == 0 {
		t.Error("no budget-stop event in the ledger")
	}

	// Second submission with the budget lifted resumes from the final
	// checkpoint and finishes the remaining steps bit-identically.
	rcfg.WalltimeBudgetS = 0
	res2, out2, err := RunSupervised(recoverableConfig(), rcfg)
	if err != nil {
		t.Fatal(err)
	}
	if out2.Status != recovery.StatusCompleted || !out2.Resumed {
		t.Fatalf("resume run ended %+v, want completed resume", out2)
	}
	if out2.ResumeStep != len(res1.StepBoundariesS) {
		t.Errorf("resumed at step %d, want %d", out2.ResumeStep, len(res1.StepBoundariesS))
	}
	if got := modelRecord(t, res2); got != want {
		t.Errorf("preempted+resumed run diverged from uninterrupted reference")
	}
}

func TestSupervisedEnergyBudgetStops(t *testing.T) {
	ref, err := Run(recoverableConfig())
	if err != nil {
		t.Fatal(err)
	}
	rcfg := recovery.Config{
		Dir:           t.TempDir(),
		AutosaveEvery: 1,
		Seed:          7,
		// Setup energy alone does not trip it; mid-loop total does.
		EnergyBudgetJ: ref.SetupEnergyJ + ref.Report.TotalEnergyJ*0.5,
	}
	res, out, err := RunSupervised(recoverableConfig(), rcfg)
	if err != nil {
		t.Fatal(err)
	}
	if out.Status != recovery.StatusStopped || out.StopCause != recovery.StopEnergyBudget {
		t.Fatalf("energy-budget run ended %q/%q", out.Status, out.StopCause)
	}
	if n := len(res.StepBoundariesS); n == 0 || n >= recoverableConfig().Steps {
		t.Fatalf("energy stop ran %d steps, want a strict partial run", n)
	}
}

// hangOnce delays the first Apply ever issued (real time only — the
// virtual model is untouched), simulating a wedged step for the watchdog.
type hangOnce struct {
	freqctl.Strategy
	fired *atomic.Bool
	sleep time.Duration
}

func (h hangOnce) Apply(s freqctl.Setter, fn string) error {
	if h.fired.CompareAndSwap(false, true) {
		time.Sleep(h.sleep)
	}
	return h.Strategy.Apply(s, fn)
}

func TestSupervisedWatchdogStallRestarts(t *testing.T) {
	mk := func(fired *atomic.Bool) Config {
		cfg := recoverableConfig()
		cfg.Steps = 5
		cfg.NewStrategy = func() freqctl.Strategy {
			return hangOnce{Strategy: freqctl.Baseline{}, fired: fired, sleep: 900 * time.Millisecond}
		}
		return cfg
	}
	var refFired atomic.Bool
	refFired.Store(true) // reference never sleeps
	ref, err := Run(mk(&refFired))
	if err != nil {
		t.Fatal(err)
	}

	led := events.NewLedger(0)
	rcfg := recovery.Config{
		Dir:           t.TempDir(),
		AutosaveEvery: 1,
		MaxRestarts:   2,
		BackoffS:      0.001,
		Seed:          7,
		Watchdog:      recovery.WatchdogConfig{Enabled: true, MinDeadlineS: 0.1, Mult: 4, PollS: 0.01},
		Events:        led,
	}
	var fired atomic.Bool
	res, out, err := RunSupervised(mk(&fired), rcfg)
	if err != nil {
		t.Fatal(err)
	}
	if out.WatchdogStalls < 1 || out.Restarts < 1 {
		t.Fatalf("watchdog never fired: %+v", out)
	}
	if out.Status != recovery.StatusCompleted {
		t.Fatalf("status %q after stall recovery", out.Status)
	}
	if got, want := modelRecord(t, res), modelRecord(t, ref); got != want {
		t.Error("stall-recovered run diverged from reference")
	}
	if led.Summary().ByType[events.WatchdogStall] == 0 {
		t.Error("no watchdog-stall event in the ledger")
	}
	if len(out.AttemptErrors) == 0 || !strings.Contains(out.AttemptErrors[0], "watchdog") {
		t.Errorf("attempt errors missing watchdog cause: %v", out.AttemptErrors)
	}
}

// TestManualStopRequestAndResume drives the unsupervised path a signal
// handler uses: RequestStop forces a final checkpoint and a graceful
// partial result; a later supervised submission resumes and completes.
func TestManualStopRequestAndResume(t *testing.T) {
	ref, err := Run(recoverableConfig())
	if err != nil {
		t.Fatal(err)
	}

	dir := t.TempDir()
	store, err := recovery.Open(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	ctl := recovery.NewController(recovery.Config{Dir: dir}, store)
	ctl.RequestStop("signal:interrupt")
	cfg := recoverableConfig()
	cfg.Recovery = &RunRecovery{Controller: ctl}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Recovery.Stopped || res.Recovery.StopCause != "signal:interrupt" {
		t.Fatalf("stop request not honored: %+v", res.Recovery)
	}
	if len(res.StepBoundariesS) != 1 {
		t.Fatalf("stop at first boundary ran %d steps", len(res.StepBoundariesS))
	}

	res2, out, err := RunSupervised(recoverableConfig(), recovery.Config{Dir: dir, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if !out.Resumed || out.ResumeStep != 1 {
		t.Fatalf("resume after signal stop: %+v", out)
	}
	if got, want := modelRecord(t, res2), modelRecord(t, ref); got != want {
		t.Error("signal-stopped+resumed run diverged from reference")
	}
}

func TestSupervisedRestartsExhausted(t *testing.T) {
	cfg := recoverableConfig()
	// Crash re-arms every attempt: a probability-1 crash window that is
	// never disarmed (not step-pinned), so every attempt dies.
	cfg.Faults = &faults.Plan{Name: "persistent", Seed: 3, Rules: []faults.Rule{
		{Kind: faults.RankCrash, Target: faults.TargetRank, Ranks: []int{1}, Probability: 1},
	}}
	_, out, err := RunSupervised(cfg, recovery.Config{
		Dir: t.TempDir(), AutosaveEvery: 1, MaxRestarts: 2, BackoffS: 0.001, Seed: 7,
	})
	if err == nil || !strings.Contains(err.Error(), "restarts exhausted") {
		t.Fatalf("persistent crash did not exhaust restarts: %v", err)
	}
	if out.Status != recovery.StatusRestartsExhausted || out.Attempts != 3 {
		t.Fatalf("outcome %+v", out)
	}
}

// TestCheckpointFingerprintMismatch proves a snapshot cannot be restored
// under a different configuration.
func TestCheckpointFingerprintMismatch(t *testing.T) {
	dir := t.TempDir()
	if _, _, err := RunSupervised(recoverableConfig(), recovery.Config{Dir: dir, Seed: 7}); err != nil {
		t.Fatal(err)
	}
	cfg := recoverableConfig()
	cfg.Seed = 99 // different run, same store
	_, _, err := RunSupervised(cfg, recovery.Config{Dir: dir, MaxRestarts: 0, Seed: 7})
	if err == nil || !strings.Contains(err.Error(), "different configuration") {
		t.Fatalf("fingerprint mismatch accepted: %v", err)
	}
}
