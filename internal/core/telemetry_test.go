package core

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"sphenergy/internal/cluster"
	"sphenergy/internal/events"
	"sphenergy/internal/freqctl"
	"sphenergy/internal/telemetry"
)

func telemetryTestConfig() Config {
	return Config{
		System:           cluster.MiniHPC(),
		Ranks:            2,
		Sim:              Turbulence,
		ParticlesPerRank: 10e6,
		Steps:            2,
	}
}

func TestRunEmitsTelemetry(t *testing.T) {
	cfg := telemetryTestConfig()
	cfg.Tracer = telemetry.NewTracer(cfg.Ranks)
	cfg.Metrics = telemetry.NewRegistry()
	cfg.Trace, cfg.TraceRank = true, 0
	cfg.NewStrategy = func() freqctl.Strategy {
		return &freqctl.ManDyn{Table: map[string]int{FnIAD: 1005, FnMomentum: 1110}}
	}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	if err := cfg.Tracer.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Cat  string         `json:"cat"`
			Ph   string         `json:"ph"`
			TID  int            `json:"tid"`
			Dur  float64        `json:"dur"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}

	cats := map[string]int{}
	names := map[string]int{}
	for _, e := range doc.TraceEvents {
		cats[e.Cat]++
		names[e.Name]++
	}
	// The acceptance set: step, kernel, frequency-change, and MPI spans.
	for _, cat := range []string{"step", "kernel", "function", "mpi", "freq", "freqctl"} {
		if cats[cat] == 0 {
			t.Errorf("trace has no %q events; categories: %v", cat, cats)
		}
	}
	if names["freq-change"] == 0 {
		t.Error("no freq-change events despite ManDyn switching clocks")
	}
	if names["step 0"] == 0 || names["step 1"] == 0 {
		t.Errorf("missing step spans; names: %v", names)
	}
	// Every instrumented function appears as a span on each rank and step.
	if got := names[FnMomentum]; got < cfg.Ranks*cfg.Steps {
		t.Errorf("momentum spans = %d, want >= %d", got, cfg.Ranks*cfg.Steps)
	}
	// The gpusim trace mirrors into counter tracks via the shared sink.
	if names["gpu_power_w"] == 0 {
		t.Error("trace sink did not mirror power samples into the tracer")
	}

	var prom bytes.Buffer
	if err := cfg.Metrics.WritePrometheus(&prom); err != nil {
		t.Fatal(err)
	}
	text := prom.String()
	for _, want := range []string{
		"kernel_launches_total",
		"freq_switches_total",
		"freq_switch_latency_s_count",
		`gpu_clock_mhz{rank="0"}`,
		"steps_total 2",
		"step_energy_j_sum",
		"mpi_wait_s_total",
		`energy_total_j{class="gpu"}`,
		"wall_time_s",
		`function_time_s_bucket{function="MomentumEnergy"`,
		`function_time_s_quantile{function="MomentumEnergy",quantile="0.5"}`,
		`freq_switch_latency_s_quantile`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics exposition missing %q", want)
		}
	}

	// Per-function latency histogram: one observation per pipeline phase.
	fnHist := cfg.Metrics.Histogram("function_time_s", "",
		telemetry.LatencyBuckets(), telemetry.L("function", FnMomentum))
	if got := fnHist.Count(); got != uint64(cfg.Steps) {
		t.Errorf("function_time_s{%s} count = %d, want %d (one per step)",
			FnMomentum, got, cfg.Steps)
	}

	// Telemetry must not change the physics: identical run without it.
	plain := telemetryTestConfig()
	plain.NewStrategy = cfg.NewStrategy
	plain.Trace, plain.TraceRank = true, 0
	res2, err := Run(plain)
	if err != nil {
		t.Fatal(err)
	}
	if res.WallTimeS != res2.WallTimeS || res.Report.TotalEnergyJ != res2.Report.TotalEnergyJ {
		t.Errorf("telemetry perturbed the run: wall %v vs %v, energy %v vs %v",
			res.WallTimeS, res2.WallTimeS, res.Report.TotalEnergyJ, res2.Report.TotalEnergyJ)
	}
}

func TestRunWithoutTelemetryUnchanged(t *testing.T) {
	cfg := telemetryTestConfig()
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.WallTimeS <= 0 || res.Report.TotalEnergyJ <= 0 {
		t.Errorf("degenerate run: wall=%v energy=%v", res.WallTimeS, res.Report.TotalEnergyJ)
	}
}

// BenchmarkTelemetryOverhead quantifies the cost of instrumentation against
// the no-op nil-sink path — the §III-B non-perturbation check — at the
// paper's step count (100 steps, the workload --trace-out actually sees).
// Compare:
//
//	go test -bench TelemetryOverhead -benchtime 300x -count 3 ./internal/core/
//
// Three cases:
//
//   - "off" is the seed behavior: nil sinks cost one nil check per hook
//     (~0% by construction; the hooks measure at ~2 ns each).
//   - "live" is telemetry as long runs enable it — the metrics registry
//     behind --metrics-out / --metrics-addr scraping. Stays within ~5% of
//     "off" (measured ~2-4%): hot updates are single atomics and the
//     per-rank kernel counts fold into the registry only at step bounds.
//   - "trace" additionally captures every span for --trace-out: ~66
//     spans/step here (kernels, functions, MPI waits, decisions). Each
//     record is a ~40 ns interned append, ~2-3 µs per step; that is ~10%
//     of this simulator's µs-scale step, and a vanishing fraction of the
//     multi-second real step it stands in for. Tracing is the forensic
//     mode, not the always-on path.
//
// Overall wall-clock here is noisy (±10% across runs on shared machines);
// compare minimums across -count runs, not single samples.
func BenchmarkTelemetryOverhead(b *testing.B) {
	base := telemetryTestConfig()
	base.Steps = 100

	b.Run("off", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := Run(base); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("live", func(b *testing.B) {
		cfg := base
		cfg.Metrics = telemetry.NewRegistry()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := Run(cfg); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("events", func(b *testing.B) {
		// The decision ledger alone (no tracer/registry). ManDyn drives real
		// frequency decisions so the whole pipeline runs: Traced capture on
		// every Apply, per-rank staging, coordinator drain at step bounds.
		//
		// Measured cost is ~2 µs per step for ~10 ledger events plus 22
		// intercepted Apply calls — about 5% of this simulator's µs-scale
		// step, and well under the 2% gate against any real 20³+ SPH step
		// (milliseconds), the same amplification argument as "trace" below.
		// The per-rank staging matters: emitting directly from rank
		// goroutines contends the ledger mutex and roughly doubles the
		// delta. Two benchmark-hygiene notes, both learned the hard way:
		// the ledger is hoisted (NewLedger pre-allocates the ring; per-
		// iteration construction swamps the emit cost), and the ring is
		// right-sized for the run — a DefaultCap ring keeps ~6.5 MB of
		// pointer-bearing events live, and in a process with this small a
		// heap the extra GC mark work alone reads as ~20% overhead. Real
		// deployments hold multi-GB particle arrays, where the same scan
		// cost vanishes.
		cfg := base
		cfg.NewStrategy = func() freqctl.Strategy {
			return &freqctl.ManDyn{Table: map[string]int{FnIAD: 1005, FnMomentum: 1110}}
		}
		off := cfg
		b.Run("off", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := Run(off); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run("on", func(b *testing.B) {
			cfg.Events = events.NewLedger(1024)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := Run(cfg); err != nil {
					b.Fatal(err)
				}
			}
		})
	})
	b.Run("trace", func(b *testing.B) {
		// One tracer/registry for the whole benchmark, as a long-lived
		// process would hold them; Reset keeps buffer capacity so the
		// measurement is the marginal recording cost, not allocation churn.
		cfg := base
		cfg.Tracer = telemetry.NewTracer(cfg.Ranks)
		cfg.Metrics = telemetry.NewRegistry()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			cfg.Tracer.Reset()
			if _, err := Run(cfg); err != nil {
				b.Fatal(err)
			}
		}
	})
}
