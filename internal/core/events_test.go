package core

import (
	"testing"

	"sphenergy/internal/cluster"
	"sphenergy/internal/events"
	"sphenergy/internal/faults"
	"sphenergy/internal/freqctl"
	"sphenergy/internal/sampler"
)

// TestRunEmitsDecisionLedger drives a ManDyn run with the ledger attached
// and checks every coordinator-side event family shows up with the right
// counts and correlation fields, and that predictions installed from a
// tuner sweep ride on the frequency decisions.
func TestRunEmitsDecisionLedger(t *testing.T) {
	led := events.NewLedger(0)
	led.SetPredictions(events.Predictions{
		FnIAD: {1005: {TimeS: 0.5, EnergyJ: 100, PowerW: 200, EDPJs: 50}},
	})
	cfg := telemetryTestConfig()
	cfg.Steps = 4
	cfg.NeighborRebuildEvery = 2
	cfg.Events = led
	cfg.NewStrategy = func() freqctl.Strategy {
		return &freqctl.ManDyn{Table: map[string]int{FnIAD: 1005, FnMomentum: 1110}}
	}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Events == nil {
		t.Fatal("Result.Events summary missing")
	}
	by := res.Events.ByType
	if by[events.RunStart] != 1 || by[events.RunEnd] != 1 {
		t.Errorf("run boundary events = %d start / %d end, want 1/1", by[events.RunStart], by[events.RunEnd])
	}
	if by[events.StepDone] != uint64(cfg.Steps) {
		t.Errorf("step events = %d, want %d", by[events.StepDone], cfg.Steps)
	}
	if by[events.NbrRebuild] != 2 || by[events.NbrRefresh] != 2 {
		t.Errorf("nbr events = %d rebuilds / %d refreshes, want 2/2 at cadence 2 over 4 steps",
			by[events.NbrRebuild], by[events.NbrRefresh])
	}
	if by[events.FreqDecision] == 0 {
		t.Fatal("no frequency decisions despite ManDyn switching clocks")
	}
	if got := led.Summary(); got.Emitted != res.Events.Emitted {
		t.Errorf("summary mismatch: ledger %d, result %d", got.Emitted, res.Events.Emitted)
	}

	sawPred, sawStepField := false, false
	var lastT float64
	for _, ev := range led.Events() {
		if ev.TimeS < lastT && ev.Type != events.RunStart {
			// Coordinator events are time-ordered; rank events may interleave
			// within a phase but never run backwards past a step boundary.
			if ev.Type == events.StepDone || ev.Type == events.NbrRebuild || ev.Type == events.NbrRefresh {
				t.Errorf("coordinator event %s at t=%g after t=%g", ev.Type, ev.TimeS, lastT)
			}
		}
		if ev.Type == events.StepDone {
			lastT = ev.TimeS
			if ev.Value <= 0 {
				t.Errorf("step %d carries no energy", ev.Step)
			}
		}
		if ev.Type == events.FreqDecision {
			if ev.Step >= 0 {
				sawStepField = true
			}
			if ev.Subject == FnIAD && ev.AppliedMHz == 1005 && ev.PredEDPJs == 50 {
				sawPred = true
			}
		}
	}
	if !sawPred {
		t.Error("no IAD@1005 decision carried the installed prediction")
	}
	if !sawStepField {
		t.Error("no in-loop frequency decision carried a step index")
	}
}

// TestChaosRunEmitsResilienceEvents checks the fault-path families: clamps
// from the resilient setter, rank failures, the degradation transition, and
// sampler degradation edges all land in the ledger.
func TestChaosRunEmitsResilienceEvents(t *testing.T) {
	led := events.NewLedger(0)
	cfg := Config{
		System:           cluster.CSCSA100(),
		Ranks:            4,
		Sim:              Turbulence,
		ParticlesPerRank: 10e6,
		Steps:            4,
		Sampling:         sampler.Config{GPUHz: 100, NodeHz: 10},
		Degradation:      DegradeRedistribute,
		Events:           led,
		NewStrategy: func() freqctl.Strategy {
			return &freqctl.ManDyn{Table: map[string]int{
				FnMomentum: 1410, FnIAD: 1410,
			}, Default: 1005}
		},
		Faults: &faults.Plan{Name: "chaos", Seed: 42, Rules: []faults.Rule{
			{Kind: faults.Transient, Target: faults.TargetSensor, Probability: 0.3},
			{Kind: faults.ClampedClock, Target: faults.TargetClock, MHz: 900},
			{Kind: faults.RankCrash, Target: faults.TargetRank, Ranks: []int{3}, Step: 2},
		}},
	}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	by := res.Events.ByType
	if by[events.FreqClamp] == 0 {
		t.Errorf("no freq-clamp events under a clamping injector: %v", by)
	}
	if by[events.RankFail] != 1 {
		t.Errorf("rank-fail events = %d, want 1: %v", by[events.RankFail], by)
	}
	if by[events.Degradation] == 0 {
		t.Errorf("no degradation transition under redistribute: %v", by)
	}
	if by[events.SamplerDegraded] == 0 {
		t.Errorf("no sampler degradation edges under sensor faults: %v", by)
	}
	for _, ev := range led.Events() {
		if ev.Type == events.RankFail && (ev.Rank != 3 || ev.Step != 2) {
			t.Errorf("rank-fail misattributed: %+v", ev)
		}
	}
}

// TestLedgerDoesNotPerturbRun is the determinism acceptance gate: a seeded
// run with the ledger enabled must be bit-identical to one without it.
func TestLedgerDoesNotPerturbRun(t *testing.T) {
	mk := func(led *events.Ledger) Config {
		cfg := telemetryTestConfig()
		cfg.Steps = 3
		cfg.Events = led
		cfg.NewStrategy = func() freqctl.Strategy {
			return &freqctl.ManDyn{Table: map[string]int{FnIAD: 1005, FnMomentum: 1110}}
		}
		return cfg
	}
	with, err := Run(mk(events.NewLedger(0)))
	if err != nil {
		t.Fatal(err)
	}
	without, err := Run(mk(nil))
	if err != nil {
		t.Fatal(err)
	}
	if with.WallTimeS != without.WallTimeS || with.Report.TotalEnergyJ != without.Report.TotalEnergyJ {
		t.Fatalf("ledger perturbed the run: wall %v vs %v, energy %v vs %v",
			with.WallTimeS, without.WallTimeS, with.Report.TotalEnergyJ, without.Report.TotalEnergyJ)
	}
	if without.Events != nil {
		t.Error("ledger-off run reports an events summary")
	}
}
