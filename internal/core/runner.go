package core

import (
	"fmt"
	"io"
	"math"
	"sync"

	"sphenergy/internal/attrib"
	"sphenergy/internal/cluster"
	"sphenergy/internal/events"
	"sphenergy/internal/faults"
	"sphenergy/internal/freqctl"
	"sphenergy/internal/gpusim"
	"sphenergy/internal/instr"
	"sphenergy/internal/mpisim"
	"sphenergy/internal/pmt"
	"sphenergy/internal/recovery"
	"sphenergy/internal/sampler"
	"sphenergy/internal/telemetry"
)

// Config describes one instrumented simulation run at paper scale.
type Config struct {
	// System is the node architecture (Table I).
	System cluster.NodeSpec
	// Ranks is the MPI rank count; one rank drives one GPU die.
	Ranks int
	// Sim selects the workload pipeline.
	Sim SimKind
	// ParticlesPerRank is the local problem size (150e6 for Turbulence,
	// 80e6 for Evrard in the paper's large runs; 450³ ≈ 91.1e6 on miniHPC).
	ParticlesPerRank float64
	// Ng is the SPH neighbor count (production SPH-EXA uses ~150).
	Ng int
	// Steps is the number of time-steps (the paper uses 100).
	Steps int
	// CustomPipeline supplies the instrumented function sequence when Sim
	// is Custom, letting any GPU-accelerated code adopt the measurement and
	// ManDyn machinery (the paper's §V future work).
	CustomPipeline []FuncModel
	// NewStrategy builds a per-rank frequency strategy. Nil means Baseline.
	NewStrategy func() freqctl.Strategy
	// Seed drives the deterministic load-imbalance jitter.
	Seed uint64
	// JitterSpread is the relative per-function load imbalance (default 1.5%).
	JitterSpread float64
	// Trace enables frequency/power trace recording on rank TraceRank's GPU.
	Trace     bool
	TraceRank int
	// SetupS simulates the job-setup phase (launch, allocation, moving
	// simulation data to GPU memory) that precedes the time-stepping loop.
	// Slurm's energy accounting covers it; PMT instrumentation does not —
	// the gap Fig. 3 quantifies. 0 disables it.
	SetupS float64
	// HostOverheadScale scales the fixed host-side per-step overheads
	// (1.0 default); ablations use it.
	HostOverheadScale float64
	// KeepSeries records every function's per-call time in the report
	// (per-step timelines for variability analysis).
	KeepSeries bool
	// NeighborRebuildEvery models the SPH layer's Verlet-skin neighbor-list
	// reuse: the FindNeighbors phase performs a full candidate rebuild only
	// every K-th step and a cheap streaming refresh in between, whose
	// modeled work is the NeighborRefreshCost fraction of a rebuild's. 0 or
	// 1 rebuilds every step (the pre-skin behavior, byte-identical). The
	// function phase — and its span, attribution row and frequency-switch
	// point — still exists on refresh steps, matching the real pipeline.
	NeighborRebuildEvery int
	// NeighborRefreshCost is the refresh:rebuild work ratio in (0, 1];
	// defaults to 0.35 (the measured CPU-side ratio of the SPH harness)
	// when NeighborRebuildEvery enables reuse.
	NeighborRefreshCost float64
	// Tracer, when non-nil, receives the run's span timeline — steps,
	// instrumented functions, kernel launches, frequency changes, MPI
	// waits — exportable as Chrome trace_event JSON. Nil disables span
	// recording at the cost of one nil check per hook.
	Tracer *telemetry.Tracer
	// Metrics, when non-nil, receives the run's counters, gauges and
	// histograms (kernel_launches_total, gpu_clock_mhz, step_energy_j, ...)
	// for Prometheus exposition or JSON snapshots. Nil disables metrics.
	Metrics *telemetry.Registry
	// Sampling, when enabled, runs the async power sampler during the job:
	// every rank's GPU sensor at Sampling.GPUHz plus one pm_counters node
	// sensor per node at Sampling.NodeHz. With a Tracer present, the
	// sampled series are joined against the kernel/function spans into
	// Result.Attribution; with Metrics present, live power gauges and
	// cumulative-energy counters are exported per sensor.
	Sampling sampler.Config
	// Faults, when non-nil and active, injects the plan's fault rules into
	// the run: sensor-read faults on every rank's GPU sensor and every
	// node's pm_counters view, clock-control faults on every rank's setter
	// (which is then wrapped in a freqctl.ResilientSetter), and
	// straggler/crash faults on rank execution. Nil keeps the healthy path
	// byte-identical to an unfaulted run.
	Faults *faults.Plan
	// Degradation selects the rank-failure policy: DegradeAbort (default),
	// DegradeDropRank or DegradeRedistribute.
	Degradation string
	// Resilience tunes the resilient setter wrapped around each rank's
	// clock control when Faults is active; the zero value uses defaults
	// (per-rank jitter seeds derived from Seed).
	Resilience freqctl.ResilienceConfig
	// ProfileLabels attaches a pprof label ("pass" = function name) to the
	// coordinator goroutine around each pipeline phase, so CPU-profile
	// samples group per pass in `go tool pprof -tags`. Off by default:
	// pprof.Do allocates per call, which the hot loop should not pay unless
	// a profile is actually being taken.
	ProfileLabels bool
	// Events, when non-nil, receives the run's decision ledger: frequency
	// requests and outcomes per rank (with the tuner's predicted
	// time/energy/EDP when SetPredictions was called), resilient-setter
	// actions, sampler degradation transitions, neighbor rebuild/refresh
	// triggers, rank failures, and step/run boundary records. Nil disables
	// the ledger at the cost of one nil check per hook; an enabled ledger
	// never perturbs the simulation (see internal/events).
	Events *events.Ledger
	// Recovery, when non-nil, makes the run durable and interruptible: the
	// Controller receives a step-boundary hook for autosave checkpoints,
	// watchdog heartbeats and budget enforcement, and Resume (when set)
	// restores a snapshot before stepping instead of starting from step 0.
	// A resumed run's model state is bit-identical to an uninterrupted one;
	// see internal/recovery and RunSupervised. Nil keeps the seed behaviour.
	Recovery *RunRecovery
}

// Defaulted returns the config with defaults filled in.
func (c Config) Defaulted() Config {
	if c.Ng == 0 {
		c.Ng = 150
	}
	if c.Steps == 0 {
		c.Steps = 100
	}
	if c.NewStrategy == nil {
		c.NewStrategy = func() freqctl.Strategy { return freqctl.Baseline{} }
	}
	if c.JitterSpread == 0 {
		c.JitterSpread = 0.015
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.HostOverheadScale == 0 {
		c.HostOverheadScale = 1
	}
	if c.NeighborRebuildEvery > 1 && c.NeighborRefreshCost == 0 {
		c.NeighborRefreshCost = 0.35
	}
	return c
}

// Validate rejects impossible configurations.
func (c Config) Validate() error {
	if c.Ranks < 1 {
		return fmt.Errorf("core: need at least 1 rank, got %d", c.Ranks)
	}
	if c.ParticlesPerRank <= 0 {
		return fmt.Errorf("core: non-positive particles per rank")
	}
	switch c.Sim {
	case Turbulence, Evrard:
	case Custom:
		if len(c.CustomPipeline) == 0 {
			return fmt.Errorf("core: Custom simulation requires a CustomPipeline")
		}
	default:
		return fmt.Errorf("core: unknown simulation %q", c.Sim)
	}
	memNeed := c.ParticlesPerRank * particleBytes / 1e9
	if memNeed > c.System.GPUSpec.MemSizeGB {
		return fmt.Errorf("core: %g particles/rank need %.0f GB > %s's %.0f GB GPU memory",
			c.ParticlesPerRank, memNeed, c.System.Name, c.System.GPUSpec.MemSizeGB)
	}
	if err := c.Faults.Validate(); err != nil {
		return fmt.Errorf("core: %w", err)
	}
	if !validPolicy(c.Degradation) {
		return fmt.Errorf("core: unknown degradation policy %q (want %s, %s or %s)",
			c.Degradation, DegradeAbort, DegradeDropRank, DegradeRedistribute)
	}
	if c.NeighborRebuildEvery < 0 {
		return fmt.Errorf("core: negative NeighborRebuildEvery %d", c.NeighborRebuildEvery)
	}
	if c.NeighborRefreshCost < 0 || c.NeighborRefreshCost > 1 {
		return fmt.Errorf("core: NeighborRefreshCost %g outside (0, 1]", c.NeighborRefreshCost)
	}
	return nil
}

// particleBytes is the device memory footprint per particle (SoA fields),
// used to enforce the paper's memory-capacity constraint (§IV-C: miniHPC's
// 40 GB forced smaller runs, at most 450³ ≈ 91 M particles).
const particleBytes = 280

// hostOverheads are fixed per-step host-side serial times (seconds) during
// which the GPU idles: kernel-launch stalls, CPU partitioning work,
// collective completion. They are what lets the DVFS governor decay clocks
// at step boundaries (Fig. 9) and what makes small problems insensitive to
// GPU frequency (Fig. 6).
var hostOverheads = map[string]float64{
	FnDomainDecomp:  0.120,
	FnTimestep:      0.070,
	FnFindNeighbors: 0.012,
	FnXMass:         0.006,
	FnGradh:         0.006,
	FnEOS:           0.004,
	FnIAD:           0.008,
	FnAVSwitches:    0.004,
	FnMomentum:      0.008,
	FnUpdate:        0.006,
	FnGravity:       0.016,
}

// defaultHostOverheadS applies to custom-pipeline functions without an
// entry in hostOverheads.
const defaultHostOverheadS = 0.004

// Result is the outcome of a run.
type Result struct {
	Report *instr.Report
	System *cluster.System
	// WallTimeS is the time-to-solution of the time-stepping loop.
	WallTimeS float64
	// Trace is non-nil when Config.TraceRank was set.
	Trace *gpusim.Trace
	// SetupTimeS and SetupEnergyJ cover the pre-loop job phase; only Slurm
	// accounting sees them (Report covers the instrumented loop only).
	SetupTimeS   float64
	SetupEnergyJ float64
	// StepBoundariesS records the virtual time at the end of each step, for
	// trace alignment (Fig. 9's 10-step window).
	StepBoundariesS []float64
	// Sampler holds the async power sampler's channels and series when
	// Config.Sampling was enabled, nil otherwise.
	Sampler *sampler.Sampler
	// Attribution is the span-joined per-kernel/per-function energy
	// accounting (also attached to Report); non-nil when both Sampling and
	// a Tracer were configured.
	Attribution *attrib.Attribution
	// Failures lists injected rank deaths handled by the degradation
	// policy (empty on healthy runs and under DegradeAbort, which errors).
	Failures []RankFailure
	// Faults summarizes injections and resilience actions; nil when no
	// plan was configured.
	Faults *FaultReport
	// Events is the decision-ledger roll-up (emitted/dropped counts per
	// type); nil when Config.Events was unset.
	Events *events.Summary
	// Recovery summarizes checkpoint/restore activity; nil when
	// Config.Recovery was unset.
	Recovery *RecoveryInfo
}

// EnergyJ returns total allocation energy.
func (r *Result) EnergyJ() float64 { return r.Report.TotalEnergyJ }

// GPUEnergyJ returns total GPU energy.
func (r *Result) GPUEnergyJ() float64 { return r.Report.GPUEnergyJ }

// EDP returns the allocation-level energy-delay product.
func (r *Result) EDP() float64 { return r.Report.TotalEnergyJ * r.WallTimeS }

// GPUEDP returns the GPU-energy EDP, the per-GPU metric of Figs. 6-8.
func (r *Result) GPUEDP() float64 { return r.Report.GPUEnergyJ * r.WallTimeS }

// rankCtx is the per-rank execution context.
type rankCtx struct {
	node     *cluster.Node
	dev      *gpusim.Device
	setter   freqctl.Setter
	strategy freqctl.Strategy
	sensor   pmt.Sensor
	profile  *instr.RankProfile
	// samp is the rank's async sampling channel (nil when sampling is off);
	// polled from the rank's own goroutine at kernel and idle boundaries.
	samp *sampler.Channel
}

// Run executes the instrumented time-stepping loop.
func Run(cfg Config) (*Result, error) {
	cfg = cfg.Defaulted()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	pipeline := cfg.CustomPipeline
	if cfg.Sim != Custom {
		var err error
		pipeline, err = Pipeline(cfg.Sim)
		if err != nil {
			return nil, err
		}
	}

	nodes := cfg.System.NodesForRanks(cfg.Ranks)
	system := cluster.NewSystem(cfg.System, nodes)
	net := mpisim.DefaultNetwork(system.RanksPerNode())
	world := mpisim.NewWorld(cfg.Ranks, net, cfg.Seed)
	defer world.Close()

	rt := newRunTelemetry(cfg)
	if rec := rt.spanRecorder(); rec != nil {
		world.SetRecorder(rec)
	}

	fs := newFaultState(cfg, len(system.Nodes))
	re := newRunEvents(cfg)

	ranks := make([]*rankCtx, cfg.Ranks)
	for r := 0; r < cfg.Ranks; r++ {
		node, dev, err := system.DeviceForRank(r)
		if err != nil {
			return nil, err
		}
		setter, err := freqctl.SetterFor(dev)
		if err != nil {
			return nil, err
		}
		rc := &rankCtx{
			node:     node,
			dev:      dev,
			setter:   setter,
			strategy: cfg.NewStrategy(),
			profile:  instr.NewRankProfile(r),
		}
		rc.profile.SeriesEnabled = cfg.KeepSeries
		rc.sensor = faultedSensorFor(dev, fs.sensorHook(r, dev))
		fs.wireRank(rc, r, cfg)
		re.instrumentRank(rc, r)
		rt.instrumentRank(rc, r)
		ranks[r] = rc
	}

	var trace *gpusim.Trace
	if cfg.Trace && cfg.TraceRank >= 0 && cfg.TraceRank < cfg.Ranks {
		trace = ranks[cfg.TraceRank].dev.EnableTrace()
		rt.attachTraceSink(trace, cfg.TraceRank)
	}

	// Checkpoint restore happens here — after every rank's setter, strategy
	// and fault wiring exist, and before the sampler's t=0 baseline poll and
	// the setup phase, whose effects the restored state already contains.
	var resumed *resumedState
	if cfg.Recovery != nil && cfg.Recovery.Resume != nil {
		var err error
		resumed, err = restoreRun(cfg.Recovery.Resume, cfg, system, world, ranks, fs)
		if err != nil {
			return nil, err
		}
	}

	// Async power sampling: one channel per rank GPU sensor, one
	// pm_counters node channel per node. Rank channels poll from their own
	// goroutines at kernel/idle boundaries; node channels poll from the
	// coordinator at phase boundaries. The initial PollAll establishes the
	// t=0 energy baseline so node accumulation covers the setup phase —
	// matching Slurm's from-submission scope.
	var smp *sampler.Sampler
	if cfg.Sampling.Enabled() {
		smp = sampler.New(cfg.Sampling)
		smp.SetTransitionSink(re.samplerSink())
		smp.BindMetrics(cfg.Metrics)
		for r, rc := range ranks {
			rc.samp = smp.AddRank(r, rc.sensor)
		}
		for i, n := range system.Nodes {
			smp.AddNode(i, fs.nodeSensor(i, n, world.MaxClock))
		}
		smp.PollAll()
	}

	// On any mid-run failure the hardware state is restored before
	// returning: every rank's clocks are reset (best-effort) and the
	// sampler takes a final flush so partial series stay consistent. The
	// partial Result carries the system and sampler for diagnosis.
	fail := func(err error) (*Result, error) {
		for _, rc := range ranks {
			_ = rc.setter.ResetClocks()
		}
		if smp != nil {
			smp.PollAll()
		}
		re.endRun(world.MaxClock())
		res := &Result{System: system, Sampler: smp, Events: re.summary()}
		if fs != nil {
			res.Failures = fs.failures
			res.Faults = fs.report(smp, cfg.Metrics)
		}
		return res, err
	}

	// Job setup phase: launch, allocation, host→device transfer. GPUs are
	// mostly idle (the paper's §IV-A observation that setup energy is
	// limited because the GPUs idle through it); the host is busy staging.
	var setup setupEnergies
	if cfg.SetupS > 0 && resumed == nil {
		for r := 0; r < cfg.Ranks; r++ {
			ranks[r].dev.Idle(cfg.SetupS)
			world.Advance(r, cfg.SetupS)
		}
		for _, n := range system.Nodes {
			n.AdvanceHost(cfg.SetupS, 0.35, 0.40)
		}
		for _, n := range system.Nodes {
			setup.GPU += n.GPUEnergyJ()
			setup.CPU += n.CPUEnergyJ()
			setup.Mem += n.Mem.Meter.EnergyJ()
			setup.Other += n.Aux.EnergyJ()
		}
		setup.Total = setup.GPU + setup.CPU + setup.Mem + setup.Other
		if rt != nil {
			rt.tr.Complete(telemetry.GlobalTrack, "phase", "job-setup", 0, cfg.SetupS,
				telemetry.Float("energy_j", setup.Total))
		}
		smp.PollAll()
	}

	// Strategy setup (once per rank, before the loop — the paper's
	// instrumentation point at time-stepping start). A resumed run skips
	// it: the restored device state already reflects it, and re-running it
	// would reset governor/elision state mid-sequence and diverge.
	re.beginRun(cfg, ranks[0].strategy.Name())
	if resumed == nil {
		for _, rc := range ranks {
			if err := rc.strategy.Setup(rc.setter); err != nil {
				// Earlier ranks may already hold non-default clocks; fail()
				// resets them all.
				return fail(fmt.Errorf("core: strategy setup: %w", err))
			}
		}
	}

	vendor := cfg.System.GPUSpec.Vendor
	t0 := world.MaxClock()
	stepBounds := make([]float64, 0, cfg.Steps)
	startStep := 0
	if resumed != nil {
		setup = resumed.setup
		t0 = resumed.t0
		stepBounds = append(stepBounds, resumed.stepBounds...)
		startStep = resumed.nextStep
	}

	// Strategy failures inside rank goroutines surface as a run error
	// rather than a panic; the first one wins.
	var strategyErr error
	var strategyErrMu sync.Mutex
	reportErr := func(err error) {
		strategyErrMu.Lock()
		if strategyErr == nil {
			strategyErr = err
		}
		strategyErrMu.Unlock()
	}

	// Rank fault injection: the world consults the per-rank injectors at
	// every phase; curStep and load are written by the coordinator between
	// phases only, ordered against the rank goroutines by the worker
	// channel handoff.
	curStep := startStep
	load := 1.0
	if resumed != nil {
		load = resumed.load
		if re != nil {
			// Degradation events fire on load transitions; seed the tracker
			// so a restored multiplier does not re-fire spuriously.
			re.lastLoad = load
		}
	}
	fs.wireWorld(world, ranks, func() int { return curStep })
	re.trackSteps(func() int { return curStep })

	// A checkpoint is encoded lazily at a step boundary: nextStep is the
	// first step a restore will execute; everything else is read from the
	// loop's live variables at call time (the workers are idle then).
	snapshotAt := func(nextStep int) func(w io.Writer) error {
		return func(w io.Writer) error {
			cp, err := captureCheckpoint(cfg, system, world, ranks, fs,
				nextStep, t0, stepBounds, load, setup)
			if err != nil {
				return err
			}
			return cp.encode(w)
		}
	}
	stopped := false

	// Step telemetry reuses bounds the loop computes anyway: the step span
	// runs from the previous step's boundary, and its energy accumulates
	// from the per-rank attribution below — no extra clock or meter reads.
	stepStart := t0
	if len(stepBounds) > 0 {
		stepStart = stepBounds[len(stepBounds)-1]
	}
	for step := startStep; step < cfg.Steps; step++ {
		curStep = step
		stepJ := 0.0
		// Verlet-skin modeling: refresh-only FindNeighbors steps run the
		// same phase at a fraction of the rebuild's work.
		nbrRefresh := cfg.NeighborRebuildEvery > 1 && step%cfg.NeighborRebuildEvery != 0
		if !nbrRefresh {
			rt.neighborRebuild()
		}
		re.neighborStep(world.MaxClock(), step, nbrRefresh)
		for _, fn := range pipeline {
			commS := commTime(fn, cfg, net)
			hostS, known := hostOverheads[fn.Name]
			if !known {
				hostS = defaultHostOverheadS // custom pipelines
			}
			hostS *= cfg.HostOverheadScale

			phaseStart := world.MaxClock()
			gpuStart := make([]pmt.State, cfg.Ranks)
			ran := make([]bool, cfg.Ranks)

			// Kernel execution on every rank, concurrently. Dead ranks are
			// skipped by the world; load > 1 spreads failed ranks' particles
			// over the survivors (DegradeRedistribute).
			var durs []float64
			telemetry.DoLabeled(cfg.ProfileLabels, "pass", fn.Name, func() {
				durs = world.Execute(func(r int) float64 {
					rc := ranks[r]
					if err := rc.strategy.Apply(rc.setter, fn.Name); err != nil {
						reportErr(fmt.Errorf("core: strategy apply on rank %d: %w", r, err))
						return 0
					}
					ran[r] = true
					gpuStart[r] = rc.sensor.Read()
					desc := fn.Kernel(cfg.ParticlesPerRank*load*world.Jitter(r, cfg.JitterSpread), cfg.Ng, vendor)
					if nbrRefresh && fn.Name == FnFindNeighbors {
						desc.FlopsPerItem *= cfg.NeighborRefreshCost
						desc.BytesPerItem *= cfg.NeighborRefreshCost
					}
					dur := rc.dev.Execute(desc)
					rc.samp.Poll()
					return dur
				})
			})
			waits := world.Synchronize(durs)
			rt.phaseWaits(waits)

			// Post-kernel phase: barrier wait + communication + host-side
			// serial work, during which the GPU idles.
			tail := commS + hostS
			world.Execute(func(r int) float64 {
				rc := ranks[r]
				rc.dev.Idle(waits[r] + tail)
				rc.samp.Poll()
				return 0
			})
			for r := range ranks {
				world.Advance(r, tail)
			}

			phaseEnd := world.MaxClock()
			phaseS := phaseEnd - phaseStart
			rt.functionTime(fn.Name, phaseS)

			// Host energy for the phase, advanced once per node.
			cpuBefore := make([]float64, len(system.Nodes))
			memBefore := make([]float64, len(system.Nodes))
			auxBefore := make([]float64, len(system.Nodes))
			for i, n := range system.Nodes {
				cpuBefore[i] = n.CPUEnergyJ()
				memBefore[i] = n.Mem.Meter.EnergyJ()
				auxBefore[i] = n.Aux.EnergyJ()
				n.AdvanceHost(phaseS, fn.CPUUtil, fn.MemUtil)
			}
			smp.PollNodes()

			// Per-rank attribution: GPU energy from the rank's own sensor,
			// host energy as the rank's share of its node's delta.
			rpn := float64(system.RanksPerNode())
			for r, rc := range ranks {
				if !ran[r] {
					continue // dead rank: no kernel, no sensor window
				}
				end := rc.sensor.Read()
				gpuJ := pmt.Joules(gpuStart[r], end)
				if math.IsNaN(gpuJ) {
					// Faulted sensor window: the in-band reading is unusable,
					// so the phase's GPU energy is dropped from the profile
					// (meter-based report totals are unaffected) instead of
					// poisoning downstream aggregates.
					gpuJ = 0
				}
				ni := r / system.RanksPerNode()
				cpuJ := (system.Nodes[ni].CPUEnergyJ() - cpuBefore[ni]) / rpn
				memJ := (system.Nodes[ni].Mem.Meter.EnergyJ() - memBefore[ni]) / rpn
				otherJ := (system.Nodes[ni].Aux.EnergyJ() - auxBefore[ni]) / rpn
				rc.profile.Record(fn.Name, phaseS, gpuJ, cpuJ, memJ, otherJ, commS)
				if rt != nil {
					rt.functionSpan(r, fn, phaseStart, phaseS, gpuJ, commS)
				}
				stepJ += gpuJ + cpuJ + memJ + otherJ
			}
			rt.phaseTailSpans(fn, phaseEnd, commS, hostS)
		}
		bound := world.MaxClock()
		stepBounds = append(stepBounds, bound)
		if rt != nil {
			rt.stepSpan(step, stepStart, bound, stepJ)
			stepStart = bound
		}
		re.stepDone(bound, step, stepJ)
		if strategyErr != nil {
			return fail(strategyErr)
		}
		// Step-level failure detection: record new rank deaths and let the
		// degradation policy decide whether (and how) the run continues.
		prevFails := 0
		if fs != nil {
			prevFails = len(fs.failures)
		}
		var ferr error
		load, ferr = fs.checkStep(world, step, cfg.Ranks)
		re.rankFailures(fs, prevFails, load)
		if ferr != nil {
			return fail(ferr)
		}
		// Recovery hook, last in the boundary so a step that killed the run
		// is never checkpointed: autosave on cadence, watchdog heartbeat,
		// budget/stop checks. Stop means a final checkpoint is already on
		// disk and the partial result below is the graceful early exit.
		if rcv := cfg.Recovery; rcv != nil && rcv.Controller != nil {
			d := rcv.Controller.StepDone(step, bound-t0, systemEnergy(system),
				recovery.Meta{Step: step + 1, TimeS: bound}, snapshotAt(step+1))
			if d == recovery.Stop {
				stopped = true
				break
			}
		}
	}

	wall := world.MaxClock() - t0
	report := &instr.Report{
		Simulation: string(cfg.Sim),
		System:     cfg.System.Name,
		WallTimeS:  wall,
		Strategy:   ranks[0].strategy.Name(),
	}
	for _, rc := range ranks {
		report.Ranks = append(report.Ranks, rc.profile)
	}
	// Loop-only device-class totals: setup energy is carved out so the
	// report reflects what PMT instrumentation measured. The setup phase is
	// GPU-idle, so its energy is attributed to the classes by the setup
	// power mix.
	for _, n := range system.Nodes {
		report.GPUEnergyJ += n.GPUEnergyJ()
		report.CPUEnergyJ += n.CPUEnergyJ()
		report.MemEnergyJ += n.Mem.Meter.EnergyJ()
		report.OtherEnergyJ += n.Aux.EnergyJ()
	}
	report.GPUEnergyJ -= setup.GPU
	report.CPUEnergyJ -= setup.CPU
	report.MemEnergyJ -= setup.Mem
	report.OtherEnergyJ -= setup.Other
	report.TotalEnergyJ = report.GPUEnergyJ + report.CPUEnergyJ + report.MemEnergyJ + report.OtherEnergyJ
	rt.finish(wall, &reportTotals{
		gpuJ: report.GPUEnergyJ, cpuJ: report.CPUEnergyJ,
		memJ: report.MemEnergyJ, otherJ: report.OtherEnergyJ,
	})

	// Final sampler flush, then the span join: sampled series against
	// kernel/function spans, gated by the documented tolerance contract at
	// the sampler's own rate.
	var attribution *attrib.Attribution
	if smp != nil {
		smp.PollAll()
		if cfg.Tracer != nil {
			attribution = attrib.Build(cfg.Tracer.Spans(), smp.RankSeries(),
				attrib.Options{RateHz: smp.Config().GPUHz})
			report.Attribution = attribution
		}
	}

	re.endRun(world.MaxClock())
	res := &Result{
		Report:          report,
		System:          system,
		WallTimeS:       wall,
		Trace:           trace,
		StepBoundariesS: stepBounds,
		SetupTimeS:      cfg.SetupS,
		SetupEnergyJ:    setup.Total,
		Sampler:         smp,
		Attribution:     attribution,
		Events:          re.summary(),
	}
	if fs != nil {
		res.Failures = fs.failures
		res.Faults = fs.report(smp, cfg.Metrics)
		report.Faults = res.Faults
	}
	if rcv := cfg.Recovery; rcv != nil && rcv.Controller != nil {
		if !stopped {
			// Completion checkpoint: a later resume of a finished run is an
			// instant no-op, and the final state stays auditable on disk.
			rcv.Controller.Final(recovery.Meta{Step: len(stepBounds), TimeS: world.MaxClock()},
				wall, snapshotAt(len(stepBounds)))
		}
		n, last := rcv.Controller.Saves()
		info := &RecoveryInfo{
			Checkpoints:    n,
			LastCheckpoint: last,
			Stopped:        stopped,
			StopCause:      rcv.Controller.StopCause(),
		}
		if rcv.Resume != nil {
			info.Resumed = true
			info.ResumeStep = rcv.Resume.Snapshot.Meta.Step
		}
		res.Recovery = info
	}
	return res, nil
}

// systemEnergy sums all component meters of the allocation.
func systemEnergy(s *cluster.System) float64 {
	total := 0.0
	for _, n := range s.Nodes {
		total += n.TotalEnergyJ()
	}
	return total
}

// sensorFor builds the vendor-appropriate PMT GPU sensor for a device —
// the back-end selection PMT performs at Create() time.
func sensorFor(dev *gpusim.Device) pmt.Sensor {
	return faultedSensorFor(dev, nil)
}

// commTime computes the function's post-kernel communication cost.
func commTime(fn FuncModel, cfg Config, net mpisim.Network) float64 {
	if cfg.Ranks <= 1 {
		// Single-GPU runs still pay a small driver/host sync per collective.
		if fn.Comm != CommNone {
			return 50e-6
		}
		return 0
	}
	n := cfg.ParticlesPerRank
	switch fn.Comm {
	case CommHalo:
		bytes := haloFraction(n, cfg.Ng) * n * fn.CommBytesPerPart * 8
		return net.HaloExchangeS(bytes, cfg.Ranks)
	case CommAllreduce:
		return net.AllreduceS(64, cfg.Ranks)
	case CommDomainSync:
		// Tree-count allgather plus particle migration of ~1% of particles.
		ag := net.AllgatherS(512, cfg.Ranks)
		migr := net.PointToPointS(0.01*n*fn.CommBytesPerPart*8, false)
		return ag + migr
	}
	return 0
}

// haloFraction estimates the fraction of local particles that sit in the
// halo shell: surface-to-volume scaling ~ (ng/N)^(1/3).
func haloFraction(n float64, ng int) float64 {
	if n <= 0 {
		return 0
	}
	f := 4.5 * math.Cbrt(float64(ng)) / math.Cbrt(n)
	if f > 0.3 {
		f = 0.3
	}
	return f
}
