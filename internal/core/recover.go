package core

import (
	"sphenergy/internal/recovery"
)

// RunSupervised executes Run under the recovery supervisor: the newest
// valid snapshot in rcfg.Dir is restored before stepping, crashes and
// watchdog stalls restart the run from disk with seeded backoff up to
// rcfg.MaxRestarts, and budgets stop it gracefully with a final
// checkpoint. The Outcome reports attempts, restarts, stalls and the stop
// cause; the error is non-nil only when restarts are exhausted or the
// snapshot store cannot be opened.
func RunSupervised(cfg Config, rcfg recovery.Config) (*Result, *recovery.Outcome, error) {
	return recovery.Supervise(rcfg, func(resume *recovery.Resume, ctl *recovery.Controller) (*Result, error) {
		c := cfg
		c.Recovery = &RunRecovery{Controller: ctl, Resume: resume}
		return Run(c)
	})
}
