package core

import (
	"fmt"
	"math"
	"strings"
	"testing"

	"sphenergy/internal/cluster"
	"sphenergy/internal/freqctl"
)

func miniConfig() Config {
	return Config{
		System:           cluster.MiniHPC(),
		Ranks:            1,
		Sim:              Turbulence,
		ParticlesPerRank: 27e6, // 300^3
		Steps:            5,
	}
}

func TestRunProducesCompleteReport(t *testing.T) {
	res, err := Run(miniConfig())
	if err != nil {
		t.Fatal(err)
	}
	r := res.Report
	if res.WallTimeS <= 0 {
		t.Error("no wall time")
	}
	if len(r.Ranks) != 1 {
		t.Fatalf("%d rank profiles", len(r.Ranks))
	}
	names := r.FunctionNames()
	want := PipelineFunctionNames(Turbulence)
	if len(names) != len(want) {
		t.Fatalf("report has %d functions, want %d", len(names), len(want))
	}
	for i := range names {
		if names[i] != want[i] {
			t.Errorf("function %d = %q, want %q", i, names[i], want[i])
		}
	}
	for _, fn := range names {
		st := r.FunctionTotal(fn)
		if st.Calls != 5 {
			t.Errorf("%s called %d times, want 5 (one per step)", fn, st.Calls)
		}
		if st.TimeS <= 0 || st.GPUJ <= 0 {
			t.Errorf("%s has empty measurements: %+v", fn, st)
		}
	}
}

func TestRunDeterministic(t *testing.T) {
	a, err := Run(miniConfig())
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(miniConfig())
	if err != nil {
		t.Fatal(err)
	}
	if a.WallTimeS != b.WallTimeS {
		t.Errorf("wall time differs: %v vs %v", a.WallTimeS, b.WallTimeS)
	}
	if a.Report.TotalEnergyJ != b.Report.TotalEnergyJ {
		t.Errorf("energy differs: %v vs %v", a.Report.TotalEnergyJ, b.Report.TotalEnergyJ)
	}
}

func TestRunSeedChangesJitter(t *testing.T) {
	cfgA := miniConfig()
	cfgA.Ranks = 4
	cfgA.Ranks = 2
	cfgB := cfgA
	cfgB.Seed = 99
	a, _ := Run(cfgA)
	b, _ := Run(cfgB)
	if a.WallTimeS == b.WallTimeS {
		t.Error("different seeds produced identical wall times (jitter inactive)")
	}
}

func TestReportTotalsMatchDeviceClasses(t *testing.T) {
	res, err := Run(miniConfig())
	if err != nil {
		t.Fatal(err)
	}
	r := res.Report
	sum := r.GPUEnergyJ + r.CPUEnergyJ + r.MemEnergyJ + r.OtherEnergyJ
	if math.Abs(sum-r.TotalEnergyJ) > 1e-6 {
		t.Errorf("class sum %v != total %v", sum, r.TotalEnergyJ)
	}
	// Per-function GPU energies sum to the GPU total (single rank, no
	// setup phase).
	var fnSum float64
	for _, fn := range r.FunctionNames() {
		fnSum += r.FunctionTotal(fn).GPUJ
	}
	if math.Abs(fnSum-r.GPUEnergyJ) > 1e-6*r.GPUEnergyJ {
		t.Errorf("per-function GPU sum %v != GPU total %v", fnSum, r.GPUEnergyJ)
	}
}

func TestMultiRankAllocation(t *testing.T) {
	cfg := Config{
		System:           cluster.CSCSA100(),
		Ranks:            8, // 2 nodes
		Sim:              Turbulence,
		ParticlesPerRank: 10e6,
		Steps:            3,
	}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.System.Nodes) != 2 {
		t.Errorf("%d nodes allocated, want 2", len(res.System.Nodes))
	}
	if len(res.Report.Ranks) != 8 {
		t.Errorf("%d rank profiles", len(res.Report.Ranks))
	}
	// All node GPUs were exercised.
	for ni, n := range res.System.Nodes {
		for di, d := range n.Devices {
			if d.EnergyJ() <= 0 {
				t.Errorf("node %d device %d never ran", ni, di)
			}
		}
	}
}

func TestMemoryCapacityValidation(t *testing.T) {
	cfg := miniConfig()
	cfg.ParticlesPerRank = 200e6 // 56 GB > miniHPC's 40 GB
	if _, err := Run(cfg); err == nil {
		t.Error("over-capacity run accepted (the paper's §IV-C constraint)")
	}
	// The same size fits on CSCS-A100's 80 GB cards.
	cfg.System = cluster.CSCSA100()
	cfg.Steps = 2
	if _, err := Run(cfg); err != nil {
		t.Errorf("CSCS should fit 200M particles: %v", err)
	}
}

func TestConfigValidation(t *testing.T) {
	bad := miniConfig()
	bad.Ranks = 0
	if _, err := Run(bad); err == nil {
		t.Error("zero ranks accepted")
	}
	bad = miniConfig()
	bad.ParticlesPerRank = 0
	if _, err := Run(bad); err == nil {
		t.Error("zero particles accepted")
	}
	bad = miniConfig()
	bad.Sim = "magnetohydrodynamics"
	if _, err := Run(bad); err == nil {
		t.Error("unknown sim accepted")
	}
}

func TestSetupPhaseAccounting(t *testing.T) {
	cfg := miniConfig()
	cfg.SetupS = 30
	withSetup, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.SetupS = 0
	without, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if withSetup.SetupEnergyJ <= 0 {
		t.Error("setup energy not recorded")
	}
	// The loop-only report should match the no-setup run closely.
	rel := math.Abs(withSetup.Report.TotalEnergyJ-without.Report.TotalEnergyJ) /
		without.Report.TotalEnergyJ
	if rel > 0.02 {
		t.Errorf("setup leaked into loop accounting: %.2f%% difference", 100*rel)
	}
	if withSetup.SetupTimeS != 30 {
		t.Errorf("setup time %v", withSetup.SetupTimeS)
	}
}

func TestStrategyAffectsOutcome(t *testing.T) {
	base := miniConfig()
	lo := miniConfig()
	lo.NewStrategy = func() freqctl.Strategy { return freqctl.Static{MHz: 1005} }
	rb, err := Run(base)
	if err != nil {
		t.Fatal(err)
	}
	rl, err := Run(lo)
	if err != nil {
		t.Fatal(err)
	}
	if rl.WallTimeS <= rb.WallTimeS {
		t.Error("down-scaled run should be slower")
	}
	if rl.GPUEnergyJ() >= rb.GPUEnergyJ() {
		t.Error("down-scaled run should use less GPU energy")
	}
	if rl.Report.Strategy != "static-1005" {
		t.Errorf("strategy label %q", rl.Report.Strategy)
	}
}

func TestTraceOption(t *testing.T) {
	cfg := miniConfig()
	cfg.Trace = true
	cfg.Steps = 2
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Trace == nil || res.Trace.Len() == 0 {
		t.Fatal("trace not recorded")
	}
	if len(res.StepBoundariesS) != 2 {
		t.Errorf("%d step boundaries", len(res.StepBoundariesS))
	}
	// Without the flag no trace is allocated.
	cfg.Trace = false
	res, _ = Run(cfg)
	if res.Trace != nil {
		t.Error("trace recorded without the flag")
	}
}

func TestEvrardRunsGravity(t *testing.T) {
	cfg := miniConfig()
	cfg.Sim = Evrard
	cfg.ParticlesPerRank = 8e6
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	grav := res.Report.FunctionTotal(FnGravity)
	if grav.Calls != cfg.Steps {
		t.Errorf("gravity called %d times", grav.Calls)
	}
	if grav.GPUJ <= 0 {
		t.Error("gravity consumed no energy")
	}
}

func TestLUMIRunUsesAMDPath(t *testing.T) {
	cfg := Config{
		System:           cluster.LUMIG(),
		Ranks:            2,
		Sim:              Turbulence,
		ParticlesPerRank: 10e6,
		Steps:            2,
	}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.GPUEnergyJ() <= 0 {
		t.Error("AMD devices unmeasured (rsmi sensor path broken)")
	}
}

func TestWeakScalingOverheadGrows(t *testing.T) {
	// More ranks, same per-rank work: collectives and imbalance make the
	// run slightly slower — the Fig. 3 weak-scaling shape.
	small := Config{System: cluster.CSCSA100(), Ranks: 4, Sim: Turbulence, ParticlesPerRank: 20e6, Steps: 3}
	large := small
	large.Ranks = 16
	rs, err := Run(small)
	if err != nil {
		t.Fatal(err)
	}
	rl, err := Run(large)
	if err != nil {
		t.Fatal(err)
	}
	if rl.WallTimeS <= rs.WallTimeS {
		t.Errorf("16-rank run (%v s) not slower than 4-rank (%v s)", rl.WallTimeS, rs.WallTimeS)
	}
	if rl.WallTimeS > rs.WallTimeS*1.3 {
		t.Errorf("weak-scaling overhead implausibly large: %v vs %v", rl.WallTimeS, rs.WallTimeS)
	}
}

func TestCustomPipeline(t *testing.T) {
	pipeline := []FuncModel{
		{Name: "StencilSweep", FlopsPerPart: 60, BytesPerPart: 200, Launches: 1,
			ItemFraction: 1, EffNvidia: 0.5, EffAMD: 0.4, CPUUtil: 0.05, MemUtil: 0.3},
		{Name: "Reduce", FlopsPerPart: 8, BytesPerPart: 24, Launches: 1,
			ItemFraction: 1, EffNvidia: 0.5, EffAMD: 0.4, CPUUtil: 0.1, MemUtil: 0.1,
			Comm: CommAllreduce},
	}
	cfg := miniConfig()
	cfg.Sim = Custom
	cfg.CustomPipeline = pipeline
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	names := res.Report.FunctionNames()
	if len(names) != 2 || names[0] != "StencilSweep" || names[1] != "Reduce" {
		t.Errorf("custom functions = %v", names)
	}
	if res.Report.FunctionTotal("StencilSweep").GPUJ <= 0 {
		t.Error("custom kernel not measured")
	}
	// Custom without a pipeline is rejected.
	cfg.CustomPipeline = nil
	if _, err := Run(cfg); err == nil {
		t.Error("Custom without CustomPipeline accepted")
	}
}

func TestHostOverheadScale(t *testing.T) {
	a := miniConfig()
	b := miniConfig()
	b.HostOverheadScale = 3
	ra, _ := Run(a)
	rb, _ := Run(b)
	if rb.WallTimeS <= ra.WallTimeS {
		t.Error("scaling host overheads up should slow the run")
	}
}

func TestKeepSeries(t *testing.T) {
	cfg := miniConfig()
	cfg.KeepSeries = true
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	n, mean, _, ok := res.Report.Ranks[0].SeriesStats(FnMomentum)
	if !ok || n != cfg.Steps {
		t.Fatalf("series n=%d ok=%v, want %d entries", n, ok, cfg.Steps)
	}
	if mean <= 0 {
		t.Error("empty series values")
	}
}

// failingStrategy errors on Apply after a few calls, exercising the
// runner's error propagation from rank goroutines.
type failingStrategy struct{ calls int }

func (f *failingStrategy) Name() string               { return "failing" }
func (f *failingStrategy) Setup(freqctl.Setter) error { return nil }
func (f *failingStrategy) Apply(freqctl.Setter, string) error {
	f.calls++
	if f.calls > 3 {
		return errFail
	}
	return nil
}

var errFail = fmt.Errorf("injected strategy failure")

func TestStrategyErrorPropagates(t *testing.T) {
	cfg := miniConfig()
	cfg.NewStrategy = func() freqctl.Strategy { return &failingStrategy{} }
	_, err := Run(cfg)
	if err == nil {
		t.Fatal("strategy failure swallowed")
	}
	if !strings.Contains(err.Error(), "injected strategy failure") {
		t.Errorf("error %v does not carry the cause", err)
	}
}
