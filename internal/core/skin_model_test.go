package core

import (
	"bytes"
	"strings"
	"testing"

	"sphenergy/internal/telemetry"
)

// TestNeighborRebuildEveryModelsRefresh checks the runner's Verlet-skin
// cost model: with reuse enabled, FindNeighbors still runs (and is
// attributed) every step, but refresh steps do only the configured
// fraction of a rebuild's work, so time and energy drop; the rebuild
// counter and cadence gauge report the schedule.
func TestNeighborRebuildEveryModelsRefresh(t *testing.T) {
	run := func(every int) (*Result, string) {
		cfg := miniConfig()
		cfg.Steps = 8
		cfg.NeighborRebuildEvery = every
		cfg.Metrics = telemetry.NewRegistry()
		res, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		var prom bytes.Buffer
		if err := cfg.Metrics.WritePrometheus(&prom); err != nil {
			t.Fatal(err)
		}
		return res, prom.String()
	}

	base, baseProm := run(0)
	skin, skinProm := run(4)

	// The phase exists on every step in both modes — refresh steps are
	// cheaper, not absent — so calls match and attribution stays complete.
	bf := base.Report.FunctionTotal(FnFindNeighbors)
	sf := skin.Report.FunctionTotal(FnFindNeighbors)
	if bf.Calls != 8 || sf.Calls != 8 {
		t.Fatalf("FindNeighbors calls = %d (rebuild-every-step) / %d (skin), want 8/8", bf.Calls, sf.Calls)
	}
	if sf.TimeS >= bf.TimeS {
		t.Errorf("skin FindNeighbors time %v not below rebuild-every-step %v", sf.TimeS, bf.TimeS)
	}
	if sf.GPUJ >= bf.GPUJ {
		t.Errorf("skin FindNeighbors energy %v not below rebuild-every-step %v", sf.GPUJ, bf.GPUJ)
	}
	if skin.WallTimeS >= base.WallTimeS {
		t.Errorf("skin wall time %v not below rebuild-every-step %v", skin.WallTimeS, base.WallTimeS)
	}

	// 8 steps at cadence 4 rebuild on steps 0 and 4; without reuse every
	// step rebuilds.
	if !strings.Contains(baseProm, "neighbor_rebuilds_total 8") {
		t.Errorf("rebuild-every-step exposition missing neighbor_rebuilds_total 8:\n%s", grepMetric(baseProm, "neighbor_rebuild"))
	}
	if !strings.Contains(skinProm, "neighbor_rebuilds_total 2") {
		t.Errorf("skin exposition missing neighbor_rebuilds_total 2:\n%s", grepMetric(skinProm, "neighbor_rebuild"))
	}
	if !strings.Contains(baseProm, "neighbor_rebuild_interval_steps 1") {
		t.Errorf("rebuild-every-step cadence gauge != 1:\n%s", grepMetric(baseProm, "neighbor_rebuild"))
	}
	if !strings.Contains(skinProm, "neighbor_rebuild_interval_steps 4") {
		t.Errorf("skin cadence gauge != 4:\n%s", grepMetric(skinProm, "neighbor_rebuild"))
	}

	// Cadence 1 is the explicit opt-out and must be bit-identical to the
	// zero value.
	one, _ := run(1)
	if one.WallTimeS != base.WallTimeS || one.Report.TotalEnergyJ != base.Report.TotalEnergyJ {
		t.Errorf("NeighborRebuildEvery=1 diverges from 0: wall %v vs %v, energy %v vs %v",
			one.WallTimeS, base.WallTimeS, one.Report.TotalEnergyJ, base.Report.TotalEnergyJ)
	}
}

// grepMetric returns the exposition lines mentioning substr, for failure
// messages that don't dump the whole registry.
func grepMetric(prom, substr string) string {
	var out []string
	for _, line := range strings.Split(prom, "\n") {
		if strings.Contains(line, substr) {
			out = append(out, line)
		}
	}
	return strings.Join(out, "\n")
}
