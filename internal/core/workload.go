// Package core is the paper's primary contribution assembled over the
// substrates: an instrumented SPH-EXA-style time-stepping loop that
// measures per-function, per-device energy through PMT/pm_counters and
// controls GPU application clocks per function (ManDyn), executed against
// the simulated cluster at paper scale in virtual time.
package core

import (
	"fmt"

	"sphenergy/internal/gpusim"
)

// SimKind selects the workload.
type SimKind string

// Workloads of Table I, plus the extension hook for other codes.
const (
	Turbulence SimKind = "turbulence"
	Evrard     SimKind = "evrard"
	// Custom selects a caller-supplied pipeline (Config.CustomPipeline) —
	// the paper's future-work direction of applying the method to other
	// GPU-accelerated simulation codes.
	Custom SimKind = "custom"
)

// CommKind classifies the communication a function performs after its
// kernels complete.
type CommKind int

// Communication patterns.
const (
	CommNone       CommKind = iota
	CommHalo                // nearest-neighbor halo exchange
	CommAllreduce           // small global reduction (Timestep)
	CommDomainSync          // SFC assignment broadcast + particle migration
)

// FuncModel characterizes one instrumented SPH-EXA function: the GPU work
// per particle it performs, its launch pattern, the host-side utilization
// while it runs, and the communication that follows it. The constants are
// calibrated so that per-function time and energy shares reproduce the
// paper's Figs. 5 and 8 (see calibration_test.go).
type FuncModel struct {
	Name string

	// GPU kernel shape. Ng-suffixed terms scale with the neighbor count.
	FlopsPerPart, FlopsPerPartNg float64
	BytesPerPart, BytesPerPartNg float64

	// Launches per step. DomainDecompAndSync launches many lightweight
	// kernels — the Fig. 9 pattern.
	Launches int

	// ItemFraction scales the number of work items relative to the local
	// particle count (tree kernels touch fewer items).
	ItemFraction float64

	// Eff is the achieved fraction of device peak FLOPS per vendor;
	// the gap between Nvidia and AMD encodes the code-maturity difference
	// the paper observes on LUMI-G (§IV-B).
	EffNvidia, EffAMD float64

	// Host activity while the function runs (drives CPU/memory meters).
	CPUUtil, MemUtil float64

	// Communication after the kernels.
	Comm             CommKind
	CommBytesPerPart float64 // halo/migration volume per local particle
}

func (f FuncModel) eff(vendor gpusim.Vendor) float64 {
	if vendor == gpusim.AMD {
		return f.EffAMD
	}
	return f.EffNvidia
}

// Kernel builds the GPU kernel descriptor for this function at a given
// local particle count and neighbor count.
func (f FuncModel) Kernel(nLocal float64, ng int, vendor gpusim.Vendor) gpusim.KernelDesc {
	items := nLocal * f.ItemFraction
	if f.ItemFraction == 0 {
		items = nLocal
	}
	return gpusim.KernelDesc{
		Name:         f.Name,
		Items:        items,
		FlopsPerItem: workScale * (f.FlopsPerPart + f.FlopsPerPartNg*float64(ng)),
		BytesPerItem: workScale * (f.BytesPerPart + f.BytesPerPartNg*float64(ng)),
		Launches:     f.Launches,
		EffFactor:    f.eff(vendor),
	}
}

// workScale is a global work multiplier mapping the per-particle operation
// counts of the Go reference implementation onto the heavier production
// kernels (higher-order kernels, larger neighbor stencils, extra passes) so
// that absolute step times and run energies land at the paper's scale.
const workScale = 3.0

// Function names, matching the paper's figures.
const (
	FnDomainDecomp  = "DomainDecompAndSync"
	FnFindNeighbors = "FindNeighbors"
	FnXMass         = "XMass"
	FnGradh         = "NormalizationGradh"
	FnEOS           = "EquationOfState"
	FnIAD           = "IADVelocityDivCurl"
	FnAVSwitches    = "AVSwitches"
	FnMomentum      = "MomentumEnergy"
	FnTimestep      = "Timestep"
	FnUpdate        = "UpdateQuantities"
	FnGravity       = "Gravity"
)

// TurbulencePipeline returns the instrumented function sequence of one
// Subsonic Turbulence time-step. Workload constants are per particle (and
// per neighbor for the Ng terms); they were set from operation counts of
// the Go SPH implementation in internal/sph and calibrated against the
// paper's measured shares.
func TurbulencePipeline() []FuncModel {
	return []FuncModel{
		{
			Name: FnDomainDecomp,
			// Many lightweight kernels: SFC keys, sort passes, sync buffers.
			FlopsPerPart: 150, BytesPerPart: 1500,
			Launches: 64, ItemFraction: 1,
			EffNvidia: 0.45, EffAMD: 0.25,
			CPUUtil: 0.55, MemUtil: 0.35,
			Comm: CommDomainSync, CommBytesPerPart: 4.0,
		},
		{
			Name:         FnFindNeighbors,
			FlopsPerPart: 40, FlopsPerPartNg: 30,
			BytesPerPart: 64, BytesPerPartNg: 25,
			Launches: 2, ItemFraction: 1,
			EffNvidia: 0.50, EffAMD: 0.16,
			CPUUtil: 0.10, MemUtil: 0.30,
		},
		{
			Name:           FnXMass,
			FlopsPerPartNg: 17, BytesPerPartNg: 22,
			BytesPerPart: 48,
			Launches:     1, ItemFraction: 1,
			EffNvidia: 0.50, EffAMD: 0.16,
			CPUUtil: 0.08, MemUtil: 0.30,
			Comm: CommHalo, CommBytesPerPart: 1.6,
		},
		{
			Name:           FnGradh,
			FlopsPerPartNg: 16, BytesPerPartNg: 21,
			BytesPerPart: 40,
			Launches:     1, ItemFraction: 1,
			EffNvidia: 0.50, EffAMD: 0.16,
			CPUUtil: 0.08, MemUtil: 0.28,
		},
		{
			Name:         FnEOS,
			FlopsPerPart: 24, BytesPerPart: 72,
			Launches: 1, ItemFraction: 1,
			EffNvidia: 0.55, EffAMD: 0.22,
			CPUUtil: 0.06, MemUtil: 0.25,
		},
		{
			Name:           FnIAD,
			FlopsPerPartNg: 96, BytesPerPartNg: 24,
			BytesPerPart: 56,
			Launches:     2, ItemFraction: 1,
			EffNvidia: 0.50, EffAMD: 0.13,
			CPUUtil: 0.08, MemUtil: 0.22,
			Comm: CommHalo, CommBytesPerPart: 2.4,
		},
		{
			Name:         FnAVSwitches,
			FlopsPerPart: 30, BytesPerPart: 88,
			Launches: 1, ItemFraction: 1,
			EffNvidia: 0.50, EffAMD: 0.22,
			CPUUtil: 0.06, MemUtil: 0.24,
		},
		{
			Name:           FnMomentum,
			FlopsPerPartNg: 170, BytesPerPartNg: 32,
			BytesPerPart: 64,
			Launches:     1, ItemFraction: 1,
			EffNvidia: 0.65, EffAMD: 0.07,
			CPUUtil: 0.08, MemUtil: 0.20,
			Comm: CommHalo, CommBytesPerPart: 2.0,
		},
		{
			Name:         FnTimestep,
			FlopsPerPart: 16, BytesPerPart: 40,
			Launches: 2, ItemFraction: 1,
			EffNvidia: 0.50, EffAMD: 0.22,
			CPUUtil: 0.10, MemUtil: 0.15,
			Comm: CommAllreduce,
		},
		{
			Name:         FnUpdate,
			FlopsPerPart: 36, BytesPerPart: 150,
			Launches: 1, ItemFraction: 1,
			EffNvidia: 0.55, EffAMD: 0.22,
			CPUUtil: 0.06, MemUtil: 0.35,
		},
	}
}

// EvrardPipeline returns the function sequence of one Evrard Collapse
// time-step: the Turbulence pipeline plus Barnes–Hut gravity (the paper
// chose Evrard precisely because it adds gravity).
func EvrardPipeline() []FuncModel {
	p := TurbulencePipeline()
	grav := FuncModel{
		Name: FnGravity,
		// Tree traversal: high arithmetic intensity, branchy (lower eff).
		FlopsPerPart: 260, FlopsPerPartNg: 38,
		BytesPerPart: 96, BytesPerPartNg: 5,
		Launches: 3, ItemFraction: 1,
		EffNvidia: 0.40, EffAMD: 0.10,
		CPUUtil: 0.10, MemUtil: 0.18,
		Comm: CommHalo, CommBytesPerPart: 1.0,
	}
	// Gravity runs after IADVelocityDivCurl, before MomentumEnergy.
	out := make([]FuncModel, 0, len(p)+1)
	for _, f := range p {
		out = append(out, f)
		if f.Name == FnAVSwitches {
			out = append(out, grav)
		}
	}
	return out
}

// Pipeline returns the pipeline for a simulation kind.
func Pipeline(kind SimKind) ([]FuncModel, error) {
	switch kind {
	case Turbulence:
		return TurbulencePipeline(), nil
	case Evrard:
		return EvrardPipeline(), nil
	}
	return nil, fmt.Errorf("core: unknown simulation kind %q", kind)
}

// PipelineFunctionNames lists the instrumented function names of a kind.
func PipelineFunctionNames(kind SimKind) []string {
	p, err := Pipeline(kind)
	if err != nil {
		return nil
	}
	names := make([]string, len(p))
	for i, f := range p {
		names[i] = f.Name
	}
	return names
}
