package core

import (
	"math"
	"strings"
	"testing"

	"sphenergy/internal/cluster"
	"sphenergy/internal/sampler"
	"sphenergy/internal/telemetry"
)

// TestSamplingAttributionMatchesGroundTruth is the acceptance check for
// the energy attribution layer: at the default 100 Hz sampling rate, the
// span-joined attribution of every resolvable kernel agrees with the
// gpusim model's exactly-integrated energy within the documented 2%
// tolerance, and so does the energy-weighted aggregate over all kernels.
func TestSamplingAttributionMatchesGroundTruth(t *testing.T) {
	cfg := Config{
		System:           cluster.MiniHPC(),
		Ranks:            2,
		Sim:              Turbulence,
		ParticlesPerRank: 10e6,
		Steps:            3,
		Tracer:           telemetry.NewTracer(2),
		Metrics:          telemetry.NewRegistry(),
		Sampling:         sampler.Config{GPUHz: 100, NodeHz: 10},
	}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	a := res.Attribution
	if a == nil {
		t.Fatal("sampling + tracer must produce an attribution")
	}
	if res.Report.Attribution != a {
		t.Fatal("attribution not attached to the report")
	}
	if len(a.Kernels) == 0 || len(a.Functions) == 0 {
		t.Fatalf("empty tables: %d kernels, %d functions", len(a.Kernels), len(a.Functions))
	}
	if !a.Pass {
		t.Fatalf("attribution failed its tolerance contract: agg=%.3f%% maxResolvable=%.3f%% (tol %.3f%%)",
			a.AggErrPct, a.MaxResolvableErrPct, a.Opts.TolerancePct)
	}
	resolvable := 0
	for _, r := range a.Kernels {
		if !r.Resolvable {
			continue
		}
		resolvable++
		if math.Abs(r.ErrPct) > a.Opts.TolerancePct {
			t.Errorf("kernel %s rank %d: err %.3f%% > %.1f%%", r.Name, r.Rank, r.ErrPct, a.Opts.TolerancePct)
		}
		if r.EDPJs <= 0 {
			t.Errorf("kernel %s rank %d: non-positive EDP %g", r.Name, r.Rank, r.EDPJs)
		}
	}
	if resolvable == 0 {
		t.Fatal("no resolvable kernels at 100 Hz — gate is vacuous")
	}

	// Cross-check against the device's own ground-truth accounting: the
	// attribution's ModelJ per kernel must equal the per-device integrated
	// energy (the spans carry exactly what the device accumulated).
	for r := 0; r < cfg.Ranks; r++ {
		_, dev, err := res.System.DeviceForRank(r)
		if err != nil {
			t.Fatal(err)
		}
		want := map[string]float64{}
		for _, k := range dev.KernelEnergies() {
			want[k.Name] = k.EnergyJ
		}
		got := map[string]float64{}
		for _, row := range a.Kernels {
			if row.Rank == r {
				got[row.Name] = row.ModelJ
			}
		}
		if len(got) != len(want) {
			t.Fatalf("rank %d: %d attributed kernels, device ran %d", r, len(got), len(want))
		}
		for name, wj := range want {
			if gj := got[name]; math.Abs(gj-wj) > 1e-6*math.Max(1, wj) {
				t.Errorf("rank %d kernel %s: span ModelJ %g != device ground truth %g", r, name, gj, wj)
			}
		}
	}

	// Rank summaries must cover both ranks with sampled series behind them.
	if len(a.Ranks) != cfg.Ranks {
		t.Fatalf("rank summaries = %d, want %d", len(a.Ranks), cfg.Ranks)
	}
	for _, rs := range a.Ranks {
		if rs.Samples == 0 {
			t.Errorf("rank %d has no retained samples", rs.Rank)
		}
	}
}

// TestSamplingExposesLiveMetrics verifies the acceptance criterion that
// the Prometheus exposition includes per-device power gauges and
// cumulative energy counters fed by the async sampler.
func TestSamplingExposesLiveMetrics(t *testing.T) {
	cfg := Config{
		System:           cluster.MiniHPC(),
		Ranks:            2,
		Sim:              Turbulence,
		ParticlesPerRank: 8e6,
		Steps:            2,
		Metrics:          telemetry.NewRegistry(),
		Sampling:         sampler.Config{GPUHz: 100},
	}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	if err := cfg.Metrics.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# TYPE sampled_power_w gauge",
		"# TYPE sampled_energy_j_total counter",
		`rank="0"`,
		`rank="1"`,
		`sensor="node0:cray:energy"`,
		"sampler_ticks_total",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q:\n%s", want, out)
		}
	}
	// The rank channels' accumulated energy must track the loop GPU energy.
	gpuJ := res.Report.GPUEnergyJ
	sampJ := res.Sampler.RankAccumJ()
	if gpuJ <= 0 || math.Abs(sampJ-gpuJ)/gpuJ > 0.02 {
		t.Fatalf("sampled GPU energy %g vs report %g (>2%% apart)", sampJ, gpuJ)
	}
}

// TestSamplingOffIsInert pins the default path: no sampling config means
// no sampler, no attribution, and no behavioural change to the run.
func TestSamplingOffIsInert(t *testing.T) {
	cfg := Config{
		System:           cluster.MiniHPC(),
		Ranks:            1,
		Sim:              Turbulence,
		ParticlesPerRank: 8e6,
		Steps:            2,
	}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Sampler != nil || res.Attribution != nil {
		t.Fatal("sampling artifacts present without Sampling config")
	}
	if res.Report.Attribution != nil {
		t.Fatal("report attribution present without sampling")
	}

	cfg2 := cfg
	cfg2.Sampling = sampler.Config{GPUHz: 100, NodeHz: 10}
	res2, err := Run(cfg2)
	if err != nil {
		t.Fatal(err)
	}
	// Sampling must not perturb the simulation: identical energy totals.
	if res.Report.TotalEnergyJ != res2.Report.TotalEnergyJ || res.WallTimeS != res2.WallTimeS {
		t.Fatalf("sampling perturbed the run: %g/%g J, %g/%g s",
			res.Report.TotalEnergyJ, res2.Report.TotalEnergyJ, res.WallTimeS, res2.WallTimeS)
	}
}

// BenchmarkSamplerOverhead quantifies the cost the async sampler adds to
// a run at the paper's step count, across the rates the real back-ends
// use (10 Hz BMC/pm_counters, 100 Hz NVML). Compare:
//
//	go test -bench SamplerOverhead -benchtime 100x -count 3 ./internal/core/
//
// Sampling piggybacks on existing hook points (one Poll per kernel/idle
// boundary), so the marginal cost is the tick emission itself: a few
// lerps and ring appends per elapsed period. At 100 Hz that is ~hundreds
// of ticks per simulated second — small against the per-step simulation
// work, and zero when Sampling is unset (nil-channel fast path).
func BenchmarkSamplerOverhead(b *testing.B) {
	base := Config{
		System:           cluster.MiniHPC(),
		Ranks:            2,
		Sim:              Turbulence,
		ParticlesPerRank: 10e6,
		Steps:            100,
	}
	for _, bc := range []struct {
		name string
		cfg  sampler.Config
	}{
		{"off", sampler.Config{}},
		{"10Hz", sampler.Config{GPUHz: 10, NodeHz: 10}},
		{"100Hz", sampler.Config{GPUHz: 100, NodeHz: 10}},
	} {
		b.Run(bc.name, func(b *testing.B) {
			cfg := base
			cfg.Sampling = bc.cfg
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := Run(cfg); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
