package core

import (
	"encoding/json"
	"errors"
	"strings"
	"testing"

	"sphenergy/internal/cluster"
	"sphenergy/internal/faults"
	"sphenergy/internal/freqctl"
	"sphenergy/internal/gpusim"
	"sphenergy/internal/sampler"
	"sphenergy/internal/telemetry"
)

// brittleStrategy applies a fixed clock, then fails on command: Setup
// fails when failSetup is set, Apply fails after `applies` successes.
type brittleStrategy struct {
	mhz       int
	failSetup bool
	applies   int
	calls     int
}

func (b *brittleStrategy) Name() string { return "brittle" }

func (b *brittleStrategy) Setup(s freqctl.Setter) error {
	if b.failSetup {
		return errors.New("injected setup failure")
	}
	_, err := s.SetSMClock(b.mhz)
	return err
}

func (b *brittleStrategy) Apply(s freqctl.Setter, fn string) error {
	b.calls++
	if b.applies >= 0 && b.calls > b.applies {
		return errors.New("injected apply failure")
	}
	return nil
}

func (b *brittleStrategy) Teardown(s freqctl.Setter) error { return s.ResetClocks() }

// assertClocksReleased checks every device is back under governor
// control — the observable effect of ResetClocks (the governor resumes
// from the last locked clock, so the MHz value alone proves nothing).
func assertClocksReleased(t *testing.T, res *Result) {
	t.Helper()
	if res == nil || res.System == nil {
		t.Fatal("failed run must return the partial result for diagnosis")
	}
	for ni, n := range res.System.Nodes {
		for di, d := range n.Devices {
			if d.Mode() != gpusim.ModeAuto {
				t.Errorf("node %d device %d still clock-locked at %d MHz after cleanup",
					ni, di, d.SMClockMHz())
			}
		}
	}
}

// TestSetupFailureStillResetsClocks is the error-path regression test:
// when one rank's strategy fails Setup, ranks that already succeeded must
// not be left holding their set clocks, and the sampler must be flushed.
func TestSetupFailureStillResetsClocks(t *testing.T) {
	cfg := Config{
		System:           cluster.CSCSA100(),
		Ranks:            4,
		Sim:              Turbulence,
		ParticlesPerRank: 10e6,
		Steps:            2,
		Sampling:         sampler.Config{GPUHz: 100, NodeHz: 10},
	}
	built := 0
	cfg.NewStrategy = func() freqctl.Strategy {
		built++
		// Ranks 0-2 set 1005 MHz successfully; rank 3 fails Setup.
		return &brittleStrategy{mhz: 1005, failSetup: built == 4, applies: -1}
	}
	res, err := Run(cfg)
	if err == nil || !strings.Contains(err.Error(), "strategy setup") {
		t.Fatalf("err = %v, want strategy setup failure", err)
	}
	assertClocksReleased(t, res)
	if res.Sampler == nil {
		t.Fatal("partial result must carry the sampler")
	}
	for _, st := range res.Sampler.Stats() {
		if st.Ticks == 0 {
			t.Errorf("sampler channel %s never flushed", st.Name)
		}
	}
}

// TestApplyFailureMidRunResetsClocks covers the "first error wins" path
// inside the stepping loop.
func TestApplyFailureMidRunResetsClocks(t *testing.T) {
	cfg := miniConfig()
	cfg.NewStrategy = func() freqctl.Strategy {
		return &brittleStrategy{mhz: 1005, applies: 7}
	}
	res, err := Run(cfg)
	if err == nil || !strings.Contains(err.Error(), "strategy apply") {
		t.Fatalf("err = %v, want strategy apply failure", err)
	}
	assertClocksReleased(t, res)
}

func crashPlan(rank, step int) *faults.Plan {
	return &faults.Plan{Name: "crash", Seed: 11, Rules: []faults.Rule{
		{Kind: faults.RankCrash, Target: faults.TargetRank, Ranks: []int{rank}, Step: step},
	}}
}

func TestRankCrashAbortPolicy(t *testing.T) {
	cfg := Config{
		System:           cluster.CSCSA100(),
		Ranks:            4,
		Sim:              Turbulence,
		ParticlesPerRank: 10e6,
		Steps:            4,
		Faults:           crashPlan(2, 1),
	}
	res, err := Run(cfg)
	if err == nil || !strings.Contains(err.Error(), "rank 2 failed at step 1") {
		t.Fatalf("err = %v, want abort on rank 2 at step 1", err)
	}
	if len(res.Failures) != 1 || res.Failures[0].Rank != 2 || res.Failures[0].Step != 1 {
		t.Fatalf("failures = %+v", res.Failures)
	}
	if res.Faults == nil || len(res.Faults.Failures) != 1 {
		t.Fatalf("fault report = %+v", res.Faults)
	}
	// Abort is an error path: clocks must be released to the governor.
	assertClocksReleased(t, res)
}

func TestRankCrashDropAndRedistribute(t *testing.T) {
	base := Config{
		System:           cluster.CSCSA100(),
		Ranks:            4,
		Sim:              Turbulence,
		ParticlesPerRank: 10e6,
		Steps:            4,
		Faults:           crashPlan(2, 1),
	}
	drop := base
	drop.Degradation = DegradeDropRank
	dres, err := Run(drop)
	if err != nil {
		t.Fatalf("drop-rank run failed: %v", err)
	}
	if len(dres.Failures) != 1 || dres.Failures[0].Rank != 2 {
		t.Fatalf("drop failures = %+v", dres.Failures)
	}
	if dres.Report.Faults == nil || dres.Report.Faults.Degradation != DegradeDropRank {
		t.Fatalf("report fault summary = %+v", dres.Report.Faults)
	}
	// The dead rank stopped calling functions after its crash step.
	deadCalls := dres.Report.Ranks[2].Get(FnMomentum).Calls
	liveCalls := dres.Report.Ranks[0].Get(FnMomentum).Calls
	if deadCalls >= liveCalls {
		t.Fatalf("dead rank ran %d momentum calls, survivors %d", deadCalls, liveCalls)
	}

	redist := base
	redist.Degradation = DegradeRedistribute
	rres, err := Run(redist)
	if err != nil {
		t.Fatalf("redistribute run failed: %v", err)
	}
	// Survivors absorb the dead rank's particles, so the redistributed run
	// takes longer than dropping the work outright.
	if rres.WallTimeS <= dres.WallTimeS {
		t.Fatalf("redistribute wall %.3f s <= drop wall %.3f s; load not respread",
			rres.WallTimeS, dres.WallTimeS)
	}
}

func TestStragglerSlowsRunAndIsCounted(t *testing.T) {
	cfg := Config{
		System:           cluster.MiniHPC(),
		Ranks:            2,
		Sim:              Turbulence,
		ParticlesPerRank: 10e6,
		Steps:            3,
	}
	healthy, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Faults = &faults.Plan{Name: "straggle", Seed: 5, Rules: []faults.Rule{
		{Kind: faults.Straggler, Target: faults.TargetRank, Ranks: []int{0}, Factor: 2.5},
	}}
	slow, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if slow.WallTimeS <= healthy.WallTimeS*1.5 {
		t.Fatalf("straggler wall %.3f s vs healthy %.3f s: injection inert",
			slow.WallTimeS, healthy.WallTimeS)
	}
	found := false
	for _, ic := range slow.Faults.Injected {
		if ic.Kind == faults.Straggler && ic.Count > 0 {
			found = true
		}
	}
	if !found {
		t.Fatalf("straggler injections not counted: %+v", slow.Faults.Injected)
	}
}

// TestSensorFaultsDegradeButDoNotFailContract: under transient sensor
// faults the sampler fails over, intervals are flagged, and the
// attribution contract holds on clean rows — the tentpole's acceptance
// shape at unit scale.
func TestSensorFaultsDegradeButDoNotFailContract(t *testing.T) {
	cfg := Config{
		System:           cluster.MiniHPC(),
		Ranks:            2,
		Sim:              Turbulence,
		ParticlesPerRank: 10e6,
		Steps:            3,
		Tracer:           telemetry.NewTracer(2),
		Metrics:          telemetry.NewRegistry(),
		Sampling:         sampler.Config{GPUHz: 100, NodeHz: 10},
		Faults: &faults.Plan{Name: "noisy-sensors", Seed: 9, Rules: []faults.Rule{
			{Kind: faults.Transient, Target: faults.TargetSensor, Probability: 0.2},
			{Kind: faults.Stuck, Target: faults.TargetSensor, Probability: 0.05, Burst: 4},
		}},
	}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Sampler.Degraded() {
		t.Fatal("sensor fault plan left the sampler pristine — injection inert")
	}
	if res.Faults == nil || !res.Faults.SamplerDegraded {
		t.Fatalf("fault report = %+v", res.Faults)
	}
	a := res.Attribution
	if a == nil {
		t.Fatal("no attribution")
	}
	if !a.Pass {
		t.Fatalf("degraded intervals must be classified, not fail the gate: agg=%.3f%% max=%.3f%% degradedRows=%d",
			a.AggErrPct, a.MaxResolvableErrPct, a.DegradedRows)
	}
	faultReads := false
	for _, st := range res.Sampler.Stats() {
		if st.FaultReads > 0 || st.StuckEvents > 0 {
			faultReads = true
		}
	}
	if !faultReads {
		t.Fatal("no channel recorded fault reads")
	}
}

// TestManDynUnderClampReportsAchievedClock is the satellite 6 regression
// at full-run scale: with the platform clamping clocks, ManDyn converges
// (no set storm) and the attribution reports the achieved — not the
// requested — clock.
func TestManDynUnderClampReportsAchievedClock(t *testing.T) {
	cfg := Config{
		System:           cluster.MiniHPC(),
		Ranks:            1,
		Sim:              Turbulence,
		ParticlesPerRank: 10e6,
		Steps:            3,
		Tracer:           telemetry.NewTracer(1),
		Metrics:          telemetry.NewRegistry(),
		Sampling:         sampler.Config{GPUHz: 100, NodeHz: 10},
		NewStrategy: func() freqctl.Strategy {
			return &freqctl.ManDyn{Table: map[string]int{
				FnMomentum: 1410, FnIAD: 1410,
			}, Default: 1005}
		},
		Faults: &faults.Plan{Name: "clamped", Seed: 3, Rules: []faults.Rule{
			{Kind: faults.ClampedClock, Target: faults.TargetClock, MHz: 900},
		}},
	}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Faults.Clamped == 0 {
		t.Fatalf("no clamped sets observed: %+v", res.Faults)
	}
	// The injector caps requests at 900 MHz; the device then snaps to its
	// nearest supported application clock, which may sit slightly above.
	// The point is that the reported clock is the achieved one — far below
	// the 1410/1005 MHz the strategy requested.
	for _, r := range res.Attribution.Kernels {
		if r.ClockMHz <= 0 || r.ClockMHz >= 1000 {
			t.Errorf("kernel %s reports %.0f MHz, want achieved (clamped) clock well under the 1005+ MHz requests",
				r.Name, r.ClockMHz)
		}
	}
}

// TestChaosRunDeterministic: the same config and plan must produce
// bit-identical results — wall time, energy, and the full fault report.
func TestChaosRunDeterministic(t *testing.T) {
	mk := func() Config {
		return Config{
			System:           cluster.CSCSA100(),
			Ranks:            4,
			Sim:              Turbulence,
			ParticlesPerRank: 10e6,
			Steps:            4,
			Tracer:           telemetry.NewTracer(4),
			Metrics:          telemetry.NewRegistry(),
			Sampling:         sampler.Config{GPUHz: 100, NodeHz: 10},
			Degradation:      DegradeRedistribute,
			Faults: &faults.Plan{Name: "chaos", Seed: 42, Rules: []faults.Rule{
				{Kind: faults.Transient, Target: faults.TargetSensor, Probability: 0.1},
				{Kind: faults.Stuck, Target: faults.TargetNodeSensor, Probability: 0.1, Burst: 3},
				{Kind: faults.ClampedClock, Target: faults.TargetClock, MHz: 1100, StartS: 10},
				{Kind: faults.Straggler, Target: faults.TargetRank, Probability: 0.05, Factor: 2},
				{Kind: faults.RankCrash, Target: faults.TargetRank, Ranks: []int{3}, Step: 2},
			}},
		}
	}
	a, err := Run(mk())
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(mk())
	if err != nil {
		t.Fatal(err)
	}
	if a.WallTimeS != b.WallTimeS || a.Report.TotalEnergyJ != b.Report.TotalEnergyJ {
		t.Fatalf("chaos runs diverged: wall %v vs %v, energy %v vs %v",
			a.WallTimeS, b.WallTimeS, a.Report.TotalEnergyJ, b.Report.TotalEnergyJ)
	}
	ja, err := json.Marshal(a.Faults)
	if err != nil {
		t.Fatal(err)
	}
	jb, err := json.Marshal(b.Faults)
	if err != nil {
		t.Fatal(err)
	}
	if string(ja) != string(jb) {
		t.Fatalf("fault reports diverged:\n%s\nvs\n%s", ja, jb)
	}
}

func TestConfigValidatesPlanAndPolicy(t *testing.T) {
	cfg := miniConfig()
	cfg.Degradation = "limp-home"
	if _, err := Run(cfg); err == nil || !strings.Contains(err.Error(), "degradation") {
		t.Fatalf("bad policy accepted: %v", err)
	}
	cfg = miniConfig()
	cfg.Faults = &faults.Plan{Rules: []faults.Rule{{Kind: "gremlin", Target: faults.TargetRank}}}
	if _, err := Run(cfg); err == nil || !strings.Contains(err.Error(), "unknown kind") {
		t.Fatalf("bad plan accepted: %v", err)
	}
}
