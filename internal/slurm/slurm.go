// Package slurm models the Slurm workload-manager surface the paper relies
// on for energy validation (§II-A, §IV-A): job submission with a setup
// phase, Trackable RESource (TRES) energy accounting, the sacct
// ConsumedEnergy report, and the --gpu-freq/--cpu-freq submission flags.
//
// The decisive behavioral detail for Fig. 3: Slurm integrates energy from
// job submission, so its ConsumedEnergy includes the launch/allocation/
// initialization phase that PMT's in-application measurement (which starts
// at the time-stepping loop) does not see.
package slurm

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"time"

	"sphenergy/internal/attrib"
	"sphenergy/internal/core"
	"sphenergy/internal/freqctl"
	"sphenergy/internal/pmcounters"
)

// JobState mirrors Slurm's job states.
type JobState string

// Job states.
const (
	StatePending   JobState = "PENDING"
	StateRunning   JobState = "RUNNING"
	StateCompleted JobState = "COMPLETED"
	StateFailed    JobState = "FAILED"
)

// TRESConfig is the AccountingStorageTRES setting; energy accounting only
// happens when the "energy" TRES is listed — exactly Slurm's behaviour.
type TRESConfig struct {
	Tracked []string
}

// ParseTRES parses an AccountingStorageTRES value such as
// "billing,cpu,energy,gres/gpu".
func ParseTRES(s string) TRESConfig {
	var out TRESConfig
	for _, f := range strings.Split(s, ",") {
		f = strings.TrimSpace(f)
		if f != "" {
			out.Tracked = append(out.Tracked, f)
		}
	}
	return out
}

// TracksEnergy reports whether the energy TRES is enabled.
func (t TRESConfig) TracksEnergy() bool {
	for _, f := range t.Tracked {
		if f == "energy" {
			return true
		}
	}
	return false
}

// SubmitOptions are the sbatch flags relevant to the paper.
type SubmitOptions struct {
	JobName string
	// GPUFreqMHz implements --gpu-freq=<mhz>: a static application clock
	// for the whole job, when the site permits user clock control.
	GPUFreqMHz int
	// CPUFreqKHz implements --cpu-freq (recorded, not modeled further).
	CPUFreqKHz int
	// SetupS is the job launch + application initialization time before the
	// time-stepping loop; defaults to 45 s.
	SetupS float64
	// TRES is the accounting configuration; energy is only recorded when
	// the energy TRES is tracked.
	TRES TRESConfig
	// EnergyBackend records which plugin would supply the data
	// ("ipmi", "pm_counters" or "rapl") — informational, as the simulated
	// node meters stand in for all of them.
	EnergyBackend string
}

// Job is one completed (or failed) job record.
type Job struct {
	ID       int
	Name     string
	State    JobState
	NNodes   int
	NTasks   int
	ElapsedS float64
	// ConsumedEnergyJ is the TRES energy from submission to completion;
	// 0 when energy tracking is disabled.
	ConsumedEnergyJ float64
	// LoopEnergyJ and LoopTimeS are what the application-level PMT
	// instrumentation measured (the Fig. 3 comparison series).
	LoopEnergyJ float64
	LoopTimeS   float64
	Result      *core.Result
}

// Manager assigns job IDs and stores accounting records.
type Manager struct {
	nextID int
	jobs   []*Job
}

// NewManager creates an empty accounting database.
func NewManager() *Manager { return &Manager{nextID: 1000} }

// Submit runs a simulation as a Slurm job: the setup phase is accounted
// from submission, a --gpu-freq flag turns into a static frequency
// strategy, and TRES energy is recorded at completion.
func (m *Manager) Submit(cfg core.Config, opts SubmitOptions) (*Job, error) {
	if opts.SetupS == 0 {
		opts.SetupS = 45
	}
	cfg.SetupS = opts.SetupS
	if opts.GPUFreqMHz > 0 {
		mhz := opts.GPUFreqMHz
		cfg.NewStrategy = func() freqctl.Strategy { return freqctl.Static{MHz: mhz} }
	}
	job := &Job{
		ID:     m.nextID,
		Name:   opts.JobName,
		NTasks: cfg.Ranks,
		State:  StateRunning,
	}
	m.nextID++
	m.jobs = append(m.jobs, job)

	res, err := core.Run(cfg)
	if err != nil {
		job.State = StateFailed
		return job, fmt.Errorf("slurm: job %d: %w", job.ID, err)
	}
	job.State = StateCompleted
	job.Result = res
	job.NNodes = len(res.System.Nodes)
	job.ElapsedS = res.SetupTimeS + res.WallTimeS
	job.LoopEnergyJ = res.Report.TotalEnergyJ
	job.LoopTimeS = res.WallTimeS
	if opts.TRES.TracksEnergy() || len(opts.TRES.Tracked) == 0 {
		// Default site config tracks energy (as on LUMI and CSCS).
		job.ConsumedEnergyJ = res.SetupEnergyJ + res.Report.TotalEnergyJ
	}
	return job, nil
}

// ThreeWay reproduces the paper's cross-source energy validation (§IV-A,
// Fig. 3) for a completed job: the model's exactly-integrated job energy
// (setup + loop) is the reference, compared against (1) the async
// sampler's node-sensor accumulation, (2) a direct pm_counters read of
// every node, and (3) Slurm's ConsumedEnergy accounting. The loop-only
// PMT measurement is added as an informational row — its deviation IS the
// Fig. 3 setup-energy gap, not a measurement error. thresholdPct <= 0
// selects the default 2% gate. The verdict is attached to the job's
// report for serialization.
func ThreeWay(job *Job, thresholdPct float64) (*attrib.Validation, error) {
	if job == nil || job.Result == nil {
		return nil, fmt.Errorf("slurm: three-way validation needs a completed job")
	}
	res := job.Result
	if res.Sampler == nil {
		return nil, fmt.Errorf("slurm: three-way validation needs async sampling (core.Config.Sampling)")
	}
	if job.ConsumedEnergyJ == 0 {
		return nil, fmt.Errorf("slurm: three-way validation needs the energy TRES tracked")
	}
	referenceJ := res.SetupEnergyJ + res.Report.TotalEnergyJ
	pmJ := 0.0
	for _, n := range res.System.Nodes {
		pmJ += pmcounters.New(n).Energy()
	}
	v := attrib.NewValidation(referenceJ, thresholdPct)
	v.Add("sampled-sensors", res.Sampler.NodeAccumJ(), false)
	v.Add("pm_counters", pmJ, false)
	v.Add("slurm-consumed", job.ConsumedEnergyJ, false)
	v.Add("pmt-loop-only", job.LoopEnergyJ, true)
	if res.Sampler.Degraded() {
		// The sampler served estimated readings (NaN/stuck faults,
		// failover); its accumulation — and Slurm's accounting, which is
		// fed by the same node sensors — cannot arbitrate the 2% gate.
		// Classify them as unresolvable instead of failing the contract.
		v.MarkDegraded("sampled-sensors")
		v.MarkDegraded("slurm-consumed")
	}
	res.Report.Validation = v
	return v, nil
}

// Jobs returns the accounting records.
func (m *Manager) Jobs() []*Job { return m.jobs }

// Find returns a job by ID.
func (m *Manager) Find(id int) (*Job, bool) {
	for _, j := range m.jobs {
		if j.ID == id {
			return j, true
		}
	}
	return nil, false
}

// SacctFields are the supported sacct --format fields.
var SacctFields = []string{"JobID", "JobName", "State", "NNodes", "NTasks", "Elapsed", "ConsumedEnergy"}

// Sacct renders an sacct-style table for the given fields (all when empty).
func (m *Manager) Sacct(fields []string) string {
	if len(fields) == 0 {
		fields = SacctFields
	}
	var b strings.Builder
	for i, f := range fields {
		if i > 0 {
			b.WriteString("|")
		}
		b.WriteString(f)
	}
	b.WriteString("\n")
	for _, j := range m.jobs {
		for i, f := range fields {
			if i > 0 {
				b.WriteString("|")
			}
			b.WriteString(j.field(f))
		}
		b.WriteString("\n")
	}
	return b.String()
}

func (j *Job) field(name string) string {
	switch name {
	case "JobID":
		return strconv.Itoa(j.ID)
	case "JobName":
		return j.Name
	case "State":
		return string(j.State)
	case "NNodes":
		return strconv.Itoa(j.NNodes)
	case "NTasks":
		return strconv.Itoa(j.NTasks)
	case "Elapsed":
		d := time.Duration(j.ElapsedS * float64(time.Second)).Round(time.Second)
		return fmt.Sprintf("%02d:%02d:%02d", int(d.Hours()), int(d.Minutes())%60, int(d.Seconds())%60)
	case "ConsumedEnergy":
		return formatEnergy(j.ConsumedEnergyJ)
	}
	return ""
}

// formatEnergy renders joules the way sacct does (K/M suffixes).
func formatEnergy(j float64) string {
	switch {
	case j >= 1e6:
		return fmt.Sprintf("%.2fM", j/1e6)
	case j >= 1e3:
		return fmt.Sprintf("%.2fK", j/1e3)
	default:
		return fmt.Sprintf("%.0f", j)
	}
}

// ParseGPUFreq parses a --gpu-freq flag value ("900", "medium", "high",
// "highm1") into a MHz request against a supported-clock list (descending).
func ParseGPUFreq(value string, supportedMHz []int) (int, error) {
	if len(supportedMHz) == 0 {
		return 0, fmt.Errorf("slurm: no supported clocks")
	}
	sorted := append([]int(nil), supportedMHz...)
	sort.Sort(sort.Reverse(sort.IntSlice(sorted)))
	switch value {
	case "low":
		return sorted[len(sorted)-1], nil
	case "high":
		return sorted[0], nil
	case "highm1":
		if len(sorted) > 1 {
			return sorted[1], nil
		}
		return sorted[0], nil
	case "medium":
		return sorted[len(sorted)/2], nil
	}
	mhz, err := strconv.Atoi(value)
	if err != nil {
		return 0, fmt.Errorf("slurm: invalid --gpu-freq value %q", value)
	}
	return mhz, nil
}
