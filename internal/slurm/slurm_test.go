package slurm

import (
	"strings"
	"testing"

	"sphenergy/internal/cluster"
	"sphenergy/internal/core"
	"sphenergy/internal/sampler"
)

func smallJobConfig() core.Config {
	return core.Config{
		System:           cluster.MiniHPC(),
		Ranks:            2,
		Sim:              core.Turbulence,
		ParticlesPerRank: 8e6,
		Steps:            5,
	}
}

func TestParseTRES(t *testing.T) {
	tres := ParseTRES("billing, cpu ,energy,gres/gpu")
	if len(tres.Tracked) != 4 {
		t.Fatalf("parsed %d entries", len(tres.Tracked))
	}
	if !tres.TracksEnergy() {
		t.Error("energy TRES not detected")
	}
	if ParseTRES("billing,cpu").TracksEnergy() {
		t.Error("energy detected where absent")
	}
}

func TestSubmitAccountsSetupEnergy(t *testing.T) {
	mgr := NewManager()
	job, err := mgr.Submit(smallJobConfig(), SubmitOptions{
		JobName: "test",
		SetupS:  30,
		TRES:    ParseTRES("energy"),
	})
	if err != nil {
		t.Fatal(err)
	}
	if job.State != StateCompleted {
		t.Fatalf("state = %s", job.State)
	}
	if job.ConsumedEnergyJ <= job.LoopEnergyJ {
		t.Errorf("Slurm energy %v should exceed PMT loop energy %v (setup phase)",
			job.ConsumedEnergyJ, job.LoopEnergyJ)
	}
	// This toy job is tiny (5 steps) while setup is 30 s, so the gap is
	// large; production-scale gaps are validated in the Fig. 3 experiment.
	gap := (job.ConsumedEnergyJ - job.LoopEnergyJ) / job.ConsumedEnergyJ
	if gap <= 0 || gap >= 1 {
		t.Errorf("setup gap fraction %v implausible", gap)
	}
	if job.ElapsedS <= job.LoopTimeS {
		t.Error("elapsed should include setup time")
	}
}

func TestEnergyTrackingRequiresTRES(t *testing.T) {
	mgr := NewManager()
	job, err := mgr.Submit(smallJobConfig(), SubmitOptions{
		JobName: "no-energy",
		TRES:    ParseTRES("billing,cpu"),
	})
	if err != nil {
		t.Fatal(err)
	}
	if job.ConsumedEnergyJ != 0 {
		t.Errorf("energy recorded (%v J) without the energy TRES", job.ConsumedEnergyJ)
	}
	// The PMT path is application-level and unaffected.
	if job.LoopEnergyJ <= 0 {
		t.Error("loop energy missing")
	}
}

func TestGPUFreqFlagBecomesStaticStrategy(t *testing.T) {
	mgr := NewManager()
	job, err := mgr.Submit(smallJobConfig(), SubmitOptions{
		JobName:    "freq",
		GPUFreqMHz: 1005,
		TRES:       ParseTRES("energy"),
	})
	if err != nil {
		t.Fatal(err)
	}
	if job.Result.Report.Strategy != "static-1005" {
		t.Errorf("strategy %q, want static-1005", job.Result.Report.Strategy)
	}
}

func TestJobIDsIncrement(t *testing.T) {
	mgr := NewManager()
	a, _ := mgr.Submit(smallJobConfig(), SubmitOptions{JobName: "a"})
	b, _ := mgr.Submit(smallJobConfig(), SubmitOptions{JobName: "b"})
	if b.ID != a.ID+1 {
		t.Errorf("ids %d, %d", a.ID, b.ID)
	}
	if got, ok := mgr.Find(a.ID); !ok || got.Name != "a" {
		t.Error("Find failed")
	}
	if _, ok := mgr.Find(99999); ok {
		t.Error("Find invented a job")
	}
	if len(mgr.Jobs()) != 2 {
		t.Error("job records lost")
	}
}

func TestSacctFormat(t *testing.T) {
	mgr := NewManager()
	mgr.Submit(smallJobConfig(), SubmitOptions{JobName: "fmt", TRES: ParseTRES("energy")})
	out := mgr.Sacct(nil)
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 2 {
		t.Fatalf("sacct output:\n%s", out)
	}
	if !strings.HasPrefix(lines[0], "JobID|JobName|State") {
		t.Errorf("header %q", lines[0])
	}
	if !strings.Contains(lines[1], "COMPLETED") {
		t.Errorf("row %q", lines[1])
	}
	// Custom field selection.
	out = mgr.Sacct([]string{"JobName", "ConsumedEnergy"})
	if !strings.HasPrefix(out, "JobName|ConsumedEnergy") {
		t.Errorf("custom fields: %q", out)
	}
}

func TestFormatEnergySuffixes(t *testing.T) {
	cases := map[float64]string{
		500:   "500",
		2500:  "2.50K",
		3.2e6: "3.20M",
	}
	for j, want := range cases {
		if got := formatEnergy(j); got != want {
			t.Errorf("formatEnergy(%v) = %q, want %q", j, got, want)
		}
	}
}

func TestParseGPUFreq(t *testing.T) {
	supported := []int{1410, 1395, 1005, 210}
	cases := map[string]int{
		"900":    900,
		"high":   1410,
		"highm1": 1395,
		"low":    210,
		"medium": 1005,
	}
	for in, want := range cases {
		got, err := ParseGPUFreq(in, supported)
		if err != nil || got != want {
			t.Errorf("ParseGPUFreq(%q) = %d, %v; want %d", in, got, err, want)
		}
	}
	if _, err := ParseGPUFreq("fast", supported); err == nil {
		t.Error("invalid value accepted")
	}
	if _, err := ParseGPUFreq("high", nil); err == nil {
		t.Error("empty clock table accepted")
	}
}

func TestSubmitFailsOnBadConfig(t *testing.T) {
	mgr := NewManager()
	cfg := smallJobConfig()
	cfg.ParticlesPerRank = 1e12 // exceeds GPU memory
	job, err := mgr.Submit(cfg, SubmitOptions{JobName: "bad"})
	if err == nil {
		t.Fatal("impossible job accepted")
	}
	if job.State != StateFailed {
		t.Errorf("state = %s, want FAILED", job.State)
	}
}

func TestThreeWayValidation(t *testing.T) {
	cfg := smallJobConfig()
	cfg.Sampling = sampler.Config{GPUHz: 100, NodeHz: 10}
	mgr := NewManager()
	job, err := mgr.Submit(cfg, SubmitOptions{
		JobName: "validate",
		SetupS:  30,
		TRES:    ParseTRES("billing,cpu,energy"),
	})
	if err != nil {
		t.Fatal(err)
	}
	v, err := ThreeWay(job, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !v.Pass {
		t.Fatalf("three-way validation failed: %s\n%+v", v.Summary(), v.Sources)
	}
	for _, name := range []string{"sampled-sensors", "pm_counters", "slurm-consumed"} {
		s, ok := v.Get(name)
		if !ok {
			t.Fatalf("source %s missing", name)
		}
		if s.Informational {
			t.Fatalf("source %s must gate the verdict", name)
		}
		if s.EnergyJ <= 0 {
			t.Fatalf("source %s reads %g J", name, s.EnergyJ)
		}
	}
	// The loop-only PMT row must show the Fig. 3 setup gap: below the
	// reference, but informational so it does not fail the check.
	loop, ok := v.Get("pmt-loop-only")
	if !ok || !loop.Informational {
		t.Fatalf("pmt-loop-only row = %+v (ok=%v)", loop, ok)
	}
	if loop.RelErrPct >= 0 {
		t.Errorf("loop-only energy should sit below the job reference, rel err %+.2f%%", loop.RelErrPct)
	}
	if job.Result.Report.Validation != v {
		t.Error("validation not attached to the report")
	}
	// Slurm's own row is exact by construction (same meters, same scope).
	sl, _ := v.Get("slurm-consumed")
	if sl.RelErrPct != 0 {
		t.Errorf("slurm-consumed rel err = %g, want 0", sl.RelErrPct)
	}
}

func TestThreeWayRequiresSamplerAndTRES(t *testing.T) {
	mgr := NewManager()
	job, err := mgr.Submit(smallJobConfig(), SubmitOptions{JobName: "plain", SetupS: 10})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ThreeWay(job, 2); err == nil {
		t.Error("validation without sampling should error")
	}
	if _, err := ThreeWay(nil, 2); err == nil {
		t.Error("nil job should error")
	}
}
