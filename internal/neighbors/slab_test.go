package neighbors

import (
	"math"
	"runtime"
	"testing"

	"sphenergy/internal/rng"
	"sphenergy/internal/sfc"
)

// The slab sweep's contract is exact: same candidate sets AND same
// within-row order as per-row ForEachNeighbor queries, for any grid the
// sweep accepts. The SPH layer leans on the order for first-ngmax
// truncation and checkpointed candidate regeneration, so these tests
// compare rows element for element, not as sets.

// walkCSR collects the reference candidate CSR — indices and distances —
// with one ForEachNeighbor query per row at that row's cut radius.
func walkCSR(g *Grid, cut []float64) (off, idx []int32, dist []float64) {
	n := len(cut)
	off = make([]int32, n+1)
	for i := 0; i < n; i++ {
		off[i] = int32(len(idx))
		g.ForEachNeighbor(i, cut[i], func(j int, _, _, _, d float64) {
			idx = append(idx, int32(j))
			dist = append(dist, d)
		})
	}
	off[n] = int32(len(idx))
	return off, idx, dist
}

// compareCSR holds the sweep's CSR to the walk's element for element —
// indices exactly, and sqrt of the emitted r2 bit-identical to the walk's
// distances (the SPH layer stores that sqrt in the neighbor list).
func compareCSR(t *testing.T, tag string, off, idx []int32, r2 []float64, woff, widx []int32, wdist []float64) {
	t.Helper()
	n := len(woff) - 1
	for i := 0; i <= n; i++ {
		if off[i] != woff[i] {
			t.Fatalf("%s: offsets[%d] = %d, walk has %d", tag, i, off[i], woff[i])
		}
	}
	for k := range widx {
		if idx[k] != widx[k] {
			// Locate the row for a readable failure.
			row := 0
			for int(woff[row+1]) <= k {
				row++
			}
			t.Fatalf("%s: idx[%d] (row %d, slot %d) = %d, walk has %d",
				tag, k, row, k-int(woff[row]), idx[k], widx[k])
		}
		if d := math.Sqrt(r2[k]); d != wdist[k] {
			t.Fatalf("%s: sqrt(r2[%d]) = %.17g, walk dist is %.17g", tag, k, d, wdist[k])
		}
	}
}

// jitteredPoints lays particles on a lattice and perturbs each by up to
// half a spacing, producing the clustered-but-regular distributions SPH
// actually runs on (and plenty of exactly-equal coordinates when the
// jitter is zeroed for a fraction of the points).
func jitteredPoints(box sfc.Box, side int, seed uint64) (x, y, z []float64) {
	r := rng.New(seed)
	n := side * side * side
	x = make([]float64, n)
	y = make([]float64, n)
	z = make([]float64, n)
	dx, dy, dz := box.Lx()/float64(side), box.Ly()/float64(side), box.Lz()/float64(side)
	at := 0
	for k := 0; k < side; k++ {
		for j := 0; j < side; j++ {
			for i := 0; i < side; i++ {
				jit := 0.5
				if at%7 == 0 {
					jit = 0 // keep some particles exactly on lattice sites
				}
				x[at] = box.Xmin + (float64(i)+0.5+jit*(r.Float64()-0.5))*dx
				y[at] = box.Ymin + (float64(j)+0.5+jit*(r.Float64()-0.5))*dy
				z[at] = box.Zmin + (float64(k)+0.5+jit*(r.Float64()-0.5))*dz
				at++
			}
		}
	}
	return x, y, z
}

// mixedCuts draws per-particle cut radii in [0.3, 1.0]·rmax, with a few
// rows pinned to exactly rmax so the feasibility boundary itself is
// exercised.
func mixedCuts(n int, rmax float64, seed uint64) []float64 {
	r := rng.New(seed)
	cut := make([]float64, n)
	for i := range cut {
		cut[i] = rmax * (0.3 + 0.7*r.Float64())
		if i%97 == 0 {
			cut[i] = rmax
		}
	}
	return cut
}

func TestSlabGatherMatchesWalkFuzz(t *testing.T) {
	for seed := uint64(1); seed <= 10; seed++ {
		r := rng.New(seed * 1000)
		// Randomized, possibly non-cubic, per-axis-periodic boxes.
		box := sfc.Box{
			Xmin: r.Float64() - 0.5,
			Ymin: r.Float64() - 0.5,
			Zmin: r.Float64() - 0.5,
			PBCx: r.Float64() < 0.5,
			PBCy: r.Float64() < 0.5,
			PBCz: r.Float64() < 0.5,
		}
		box.Xmax = box.Xmin + 0.8 + 0.5*r.Float64()
		box.Ymax = box.Ymin + 0.8 + 0.5*r.Float64()
		box.Zmax = box.Zmin + 0.8 + 0.5*r.Float64()

		var x, y, z []float64
		if seed%2 == 0 {
			x, y, z = jitteredPoints(box, 10+int(seed%3), seed)
		} else {
			x, y, z = randomPoints(box, 800+int(seed)*137, seed)
		}
		// 5-7 cells per shortest axis: wrapped blocks, non-periodic border
		// blocks and interior blocks all occur.
		minExt := box.Lx()
		if box.Ly() < minExt {
			minExt = box.Ly()
		}
		if box.Lz() < minExt {
			minExt = box.Lz()
		}
		rmax := minExt / (5 + float64(seed%3))
		cut := mixedCuts(len(x), rmax, seed+42)

		g := BuildGrid(box, x, y, z, rmax)
		var ss SlabSweep
		off, idx, r2, ok := ss.Gather(g, cut, nil, nil, nil)
		if !ok {
			t.Fatalf("seed %d: sweep rejected a feasible grid (%dx%dx%d)", seed, g.nx, g.ny, g.nz)
		}
		woff, widx, wdist := walkCSR(g, cut)
		compareCSR(t, "fresh", off, idx, r2, woff, widx, wdist)

		// Scratch reuse must not change anything.
		off, idx, r2, ok = ss.Gather(g, cut, off, idx, r2)
		if !ok {
			t.Fatalf("seed %d: reused sweep rejected the grid", seed)
		}
		compareCSR(t, "reused", off, idx, r2, woff, widx, wdist)
	}
}

// TestSlabGatherWorkerCountInvariant pins the determinism contract: the
// gathered CSR must be bit-identical for any GOMAXPROCS, because the
// per-(row, rank) bucket cursors make the fill order a pure function of
// the grid, not of the worker partition. n exceeds slabSerialMinN so the
// parallel sweep actually runs.
func TestSlabGatherWorkerCountInvariant(t *testing.T) {
	box := sfc.NewPeriodicCube(0, 1)
	const n = slabSerialMinN + 4096
	x, y, z := randomPoints(box, n, 17)
	const rmax = 0.05
	cut := mixedCuts(n, rmax, 23)
	g := BuildGrid(box, x, y, z, rmax)

	prev := runtime.GOMAXPROCS(1)
	defer runtime.GOMAXPROCS(prev)
	var serial SlabSweep
	soff, sidx, sr2, ok := serial.Gather(g, cut, nil, nil, nil)
	if !ok {
		t.Fatal("sweep rejected the serial-run grid")
	}
	sdist := make([]float64, len(sr2))
	for k, v := range sr2 {
		sdist[k] = math.Sqrt(v)
	}

	runtime.GOMAXPROCS(4)
	var parallel SlabSweep
	poff, pidx, pr2, ok := parallel.Gather(g, cut, nil, nil, nil)
	if !ok {
		t.Fatal("sweep rejected the parallel-run grid")
	}
	compareCSR(t, "gomaxprocs", poff, pidx, pr2, soff, sidx, sdist)
	if soff[n] == 0 {
		t.Fatal("no candidates gathered; test inputs are degenerate")
	}
}

// TestSlabGatherInfeasibleFallsBack: grids the width-1 half-stencil cannot
// cover must be rejected (ok=false), never silently mis-gathered — the SPH
// layer falls back to the walk on that signal.
func TestSlabGatherInfeasibleFallsBack(t *testing.T) {
	box := sfc.NewPeriodicCube(0, 1)
	x, y, z := randomPoints(box, 500, 29)

	// Radius a third of the box: only 3 cells per axis.
	coarse := BuildGrid(box, x, y, z, 0.34)
	cut := mixedCuts(500, 0.34, 31)
	var ss SlabSweep
	if _, _, _, ok := ss.Gather(coarse, cut, nil, nil, nil); ok {
		t.Fatal("sweep accepted a 3-cell-per-axis grid")
	}

	// Fine grid, but one cut exceeds the cell size: the stencil would miss
	// pairs two cells away.
	fine := BuildGrid(box, x, y, z, 0.1)
	cut = mixedCuts(500, 0.1, 37)
	cut[123] = 0.15
	if _, _, _, ok := ss.Gather(fine, cut, nil, nil, nil); ok {
		t.Fatal("sweep accepted a cut wider than the cell size")
	}

	// Same grid with in-range cuts is accepted and exact.
	cut[123] = 0.1
	off, idx, r2, ok := ss.Gather(fine, cut, nil, nil, nil)
	if !ok {
		t.Fatal("sweep rejected a feasible grid")
	}
	woff, widx, wdist := walkCSR(fine, cut)
	compareCSR(t, "fine", off, idx, r2, woff, widx, wdist)
}
