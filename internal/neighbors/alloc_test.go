package neighbors

import (
	"testing"

	"sphenergy/internal/sfc"
)

// The buffer-reusing build must reach a steady state where rebuilding the
// grid in place allocates nothing: the Verlet-skin loop rebuilds every few
// steps, and any per-rebuild allocation would show up as GC pressure across
// a whole campaign. n stays below the parallel-build threshold because the
// parallel path spawns goroutines (which allocate) by design.
func TestBuildGridIntoZeroSteadyStateAllocs(t *testing.T) {
	box := sfc.NewPeriodicCube(0, 1)
	const n = 8000
	x, y, z := randomPoints(box, n, 11)

	var g *Grid
	// Warm-up: first build sizes every scratch buffer.
	g = BuildGridInto(g, box, x, y, z, 0.08)

	allocs := testing.AllocsPerRun(20, func() {
		g = BuildGridInto(g, box, x, y, z, 0.08)
	})
	if allocs != 0 {
		t.Errorf("warm BuildGridInto allocates %.1f objects/run, want 0", allocs)
	}
}

// Queries over a warm grid must not allocate either — the per-axis scan
// buffers live on the stack.
func TestGridQueryZeroAllocs(t *testing.T) {
	box := sfc.NewPeriodicCube(0, 1)
	const n = 8000
	x, y, z := randomPoints(box, n, 13)
	g := BuildGrid(box, x, y, z, 0.08)

	sink := 0
	allocs := testing.AllocsPerRun(20, func() {
		for i := 0; i < 64; i++ {
			sink += g.CountNeighbors(i, 0.08)
		}
	})
	if allocs != 0 {
		t.Errorf("warm CountNeighbors allocates %.1f objects/run, want 0", allocs)
	}
	if sink == 0 {
		t.Error("queries found no neighbors; test inputs are degenerate")
	}
}

// The slab sweep's scratch (SoA slabs, bucket counters, spill buffers)
// must likewise reach a zero-allocation steady state: cell-slab mode runs
// it on every candidate rebuild. n stays below slabSerialMinN so the sweep
// runs serially (goroutine spawns allocate by design).
func TestSlabGatherZeroSteadyStateAllocs(t *testing.T) {
	box := sfc.NewPeriodicCube(0, 1)
	const n = 8000
	x, y, z := randomPoints(box, n, 19)
	cut := mixedCuts(n, 0.08, 41)
	g := BuildGrid(box, x, y, z, 0.08)

	var ss SlabSweep
	// Warm-up: the first sweeps size the slabs and grow the spill buffers.
	off, idx, r2, ok := ss.Gather(g, cut, nil, nil, nil)
	if !ok {
		t.Fatal("sweep rejected the grid")
	}
	off, idx, r2, _ = ss.Gather(g, cut, off, idx, r2)

	allocs := testing.AllocsPerRun(20, func() {
		off, idx, r2, _ = ss.Gather(g, cut, off, idx, r2)
	})
	if allocs != 0 {
		t.Errorf("warm slab Gather allocates %.1f objects/run, want 0", allocs)
	}
	if off[n] == 0 || len(idx) == 0 {
		t.Error("sweep found no candidates; test inputs are degenerate")
	}
}

// BuildGridInto must produce exactly the layout BuildGrid does — same cells,
// same particle order — whether building fresh or overwriting a grid that
// previously held a different point set.
func TestBuildGridIntoMatchesBuildGrid(t *testing.T) {
	box := sfc.NewPeriodicCube(0, 1)
	xa, ya, za := randomPoints(box, 5000, 3)
	xb, yb, zb := randomPoints(box, 9000, 5)

	fresh := BuildGrid(box, xb, yb, zb, 0.07)

	// Reused grid: first filled from point set A at a different radius,
	// then rebuilt in place from point set B.
	g := BuildGridInto(nil, box, xa, ya, za, 0.11)
	g = BuildGridInto(g, box, xb, yb, zb, 0.07)

	if len(g.cellOff) != len(fresh.cellOff) {
		t.Fatalf("cellOff length %d != %d", len(g.cellOff), len(fresh.cellOff))
	}
	for i := range fresh.cellOff {
		if g.cellOff[i] != fresh.cellOff[i] {
			t.Fatalf("cellOff[%d] = %d, want %d", i, g.cellOff[i], fresh.cellOff[i])
		}
	}
	if len(g.order) != len(fresh.order) {
		t.Fatalf("order length %d != %d", len(g.order), len(fresh.order))
	}
	for i := range fresh.order {
		if g.order[i] != fresh.order[i] {
			t.Fatalf("order[%d] = %d, want %d", i, g.order[i], fresh.order[i])
		}
	}
	for i := 0; i < 200; i++ {
		if got, want := g.CountNeighbors(i, 0.07), fresh.CountNeighbors(i, 0.07); got != want {
			t.Fatalf("CountNeighbors(%d) = %d, want %d", i, got, want)
		}
	}
}
