package neighbors

import (
	"sort"
	"testing"
	"testing/quick"

	"sphenergy/internal/sfc"
)

func TestTreeMatchesBruteForceOpenBox(t *testing.T) {
	box := sfc.NewCube(0, 1)
	x, y, z := randomPoints(box, 600, 21)
	const radius = 0.12
	ts := BuildTree(box, x, y, z, 32)
	for i := 0; i < 60; i++ {
		got := ts.Neighbors(i, radius)
		sort.Ints(got)
		want := bruteNeighbors(box, x, y, z, i, radius)
		if !equalInts(got, want) {
			t.Fatalf("particle %d: got %v, want %v", i, got, want)
		}
	}
}

func TestTreeMatchesBruteForcePeriodic(t *testing.T) {
	box := sfc.NewPeriodicCube(0, 1)
	x, y, z := randomPoints(box, 600, 22)
	const radius = 0.14
	ts := BuildTree(box, x, y, z, 32)
	for i := 0; i < 60; i++ {
		got := ts.Neighbors(i, radius)
		sort.Ints(got)
		want := bruteNeighbors(box, x, y, z, i, radius)
		if !equalInts(got, want) {
			t.Fatalf("particle %d: got %v, want %v", i, got, want)
		}
	}
}

func TestTreeMatchesGrid(t *testing.T) {
	// The two backends are interchangeable: identical neighbor sets.
	box := sfc.NewPeriodicCube(0, 1)
	x, y, z := randomPoints(box, 800, 23)
	const radius = 0.1
	grid := BuildGrid(box, x, y, z, radius)
	tree := BuildTree(box, x, y, z, 64)
	for i := 0; i < len(x); i += 13 {
		g := grid.Neighbors(i, radius)
		tr := tree.Neighbors(i, radius)
		sort.Ints(g)
		sort.Ints(tr)
		if !equalInts(g, tr) {
			t.Fatalf("particle %d: grid %v != tree %v", i, g, tr)
		}
	}
}

func TestTreeCountsAndProperty(t *testing.T) {
	f := func(seed uint64, periodic bool) bool {
		box := sfc.NewCube(0, 1)
		if periodic {
			box = sfc.NewPeriodicCube(0, 1)
		}
		x, y, z := randomPoints(box, 150, seed)
		radius := 0.05 + 0.15*float64(seed%5)/5
		ts := BuildTree(box, x, y, z, 16)
		for i := 0; i < 8; i++ {
			got := ts.Neighbors(i, radius)
			sort.Ints(got)
			if !equalInts(got, bruteNeighbors(box, x, y, z, i, radius)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestTreeBucketSizeIndependence(t *testing.T) {
	box := sfc.NewCube(0, 1)
	x, y, z := randomPoints(box, 400, 24)
	const radius = 0.1
	coarse := BuildTree(box, x, y, z, 256)
	fine := BuildTree(box, x, y, z, 8)
	if fine.NumLeaves() <= coarse.NumLeaves() {
		t.Error("smaller buckets should yield more leaves")
	}
	for i := 0; i < 40; i++ {
		a := coarse.Neighbors(i, radius)
		b := fine.Neighbors(i, radius)
		sort.Ints(a)
		sort.Ints(b)
		if !equalInts(a, b) {
			t.Fatalf("bucket size changed results for particle %d", i)
		}
	}
}

func TestTreeCountNeighbors(t *testing.T) {
	box := sfc.NewCube(0, 1)
	x, y, z := randomPoints(box, 300, 25)
	ts := BuildTree(box, x, y, z, 32)
	for i := 0; i < 20; i++ {
		if got, want := ts.CountNeighbors(i, 0.1), len(ts.Neighbors(i, 0.1)); got != want {
			t.Fatalf("count %d != len %d", got, want)
		}
	}
}
