// Package neighbors provides fixed-radius neighbor search for SPH using a
// uniform cell grid (cell-linked lists), with optional periodic boundaries.
//
// The grid resolution adapts to the search radius so that each query scans
// at most 27 cells. Queries are safe to run concurrently once the grid is
// built, which the SPH pipeline exploits with one worker per core.
package neighbors

import (
	"math"
	"sync"

	"sphenergy/internal/par"
	"sphenergy/internal/sfc"
)

// Searcher is the neighbor-search contract shared by the cell grid and the
// octree backend; the SPH pipeline works against this interface.
type Searcher interface {
	// ForEachNeighbor invokes fn for every particle j != i within radius of
	// particle i, passing the displacement (xi - xj) and distance.
	ForEachNeighbor(i int, radius float64, fn func(j int, dx, dy, dz, dist float64))
	// CountNeighbors returns the number of neighbors within radius.
	CountNeighbors(i int, radius float64) int
}

// Grid is a uniform-cell acceleration structure over a particle set. Cell
// contents are stored CSR-style: cellOff[c]..cellOff[c+1] indexes into
// order, which lists particle indices grouped by cell in ascending order.
// The ascending order is invariant across serial and parallel builds, so
// query iteration order — and therefore the floating-point summation order
// of the SPH kernels — is deterministic.
type Grid struct {
	box        sfc.Box
	nx, ny, nz int
	cellSize   [3]float64
	cellOff    []int32 // ncells+1 prefix offsets into order
	order      []int32 // particle indices grouped by cell, ascending within each
	x, y, z    []float64
}

// parallelBuildMaxCells bounds the per-worker histogram memory of the
// parallel build (workers × ncells int32 counters); grids finer than this
// fall back to the serial counting sort.
const parallelBuildMaxCells = 1 << 20

// parallelBuildMinN is the particle count below which the serial build wins.
const parallelBuildMinN = 1 << 14

// BuildGrid creates a search grid for particles at (x, y, z) in the box,
// sized for queries up to maxRadius.
func BuildGrid(box sfc.Box, x, y, z []float64, maxRadius float64) *Grid {
	if maxRadius <= 0 {
		panic("neighbors: maxRadius must be positive")
	}
	n := len(x)
	g := &Grid{box: box, x: x, y: y, z: z}
	g.nx = gridDim(box.Lx(), maxRadius)
	g.ny = gridDim(box.Ly(), maxRadius)
	g.nz = gridDim(box.Lz(), maxRadius)
	g.cellSize = [3]float64{box.Lx() / float64(g.nx), box.Ly() / float64(g.ny), box.Lz() / float64(g.nz)}
	ncells := g.nx * g.ny * g.nz
	g.cellOff = make([]int32, ncells+1)
	g.order = make([]int32, n)
	workers := par.MaxWorkers()
	if workers > 1 && n >= parallelBuildMinN && ncells <= parallelBuildMaxCells {
		g.binParallel(ncells, workers)
	} else {
		g.binSerial(ncells)
	}
	return g
}

// binSerial fills the CSR layout with a two-pass counting sort.
func (g *Grid) binSerial(ncells int) {
	n := len(g.x)
	counts := make([]int32, ncells)
	cells := make([]int32, n)
	for i := 0; i < n; i++ {
		c := g.cellOf(g.x[i], g.y[i], g.z[i])
		cells[i] = int32(c)
		counts[c]++
	}
	off := int32(0)
	for c := 0; c < ncells; c++ {
		g.cellOff[c] = off
		off += counts[c]
		counts[c] = g.cellOff[c] // becomes the fill cursor
	}
	g.cellOff[ncells] = off
	for i := 0; i < n; i++ {
		c := cells[i]
		g.order[counts[c]] = int32(i)
		counts[c]++
	}
}

// binParallel fills the CSR layout with per-worker cell histograms: each
// worker owns a contiguous particle range, counts its per-cell occupancy,
// and — after a serial scan assigns every (worker, cell) pair its exclusive
// start — scatters its particles without atomics. Within a cell, worker w's
// particles precede worker w+1's and each worker scans ascending, so the
// final order is ascending particle index, identical to binSerial.
func (g *Grid) binParallel(ncells, workers int) {
	n := len(g.x)
	chunk := (n + workers - 1) / workers
	hist := make([]int32, workers*ncells)
	cells := make([]int32, n)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lo := w * chunk
		if lo >= n {
			break
		}
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			h := hist[w*ncells : (w+1)*ncells]
			for i := lo; i < hi; i++ {
				c := g.cellOf(g.x[i], g.y[i], g.z[i])
				cells[i] = int32(c)
				h[c]++
			}
		}(w, lo, hi)
	}
	wg.Wait()
	off := int32(0)
	for c := 0; c < ncells; c++ {
		g.cellOff[c] = off
		for w := 0; w < workers; w++ {
			t := hist[w*ncells+c]
			hist[w*ncells+c] = off
			off += t
		}
	}
	g.cellOff[ncells] = off
	for w := 0; w < workers; w++ {
		lo := w * chunk
		if lo >= n {
			break
		}
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			h := hist[w*ncells : (w+1)*ncells]
			for i := lo; i < hi; i++ {
				c := cells[i]
				g.order[h[c]] = int32(i)
				h[c]++
			}
		}(w, lo, hi)
	}
	wg.Wait()
}

func gridDim(extent, radius float64) int {
	d := int(extent / radius)
	if d < 1 {
		d = 1
	}
	// Cap grid dimensions to bound memory for tiny radii.
	if d > 512 {
		d = 512
	}
	return d
}

func (g *Grid) cellIndex(cx, cy, cz int) int {
	return (cz*g.ny+cy)*g.nx + cx
}

func (g *Grid) cellOf(x, y, z float64) int {
	cx := clampCell(int((x-g.box.Xmin)/g.cellSize[0]), g.nx)
	cy := clampCell(int((y-g.box.Ymin)/g.cellSize[1]), g.ny)
	cz := clampCell(int((z-g.box.Zmin)/g.cellSize[2]), g.nz)
	return g.cellIndex(cx, cy, cz)
}

func clampCell(c, n int) int {
	if c < 0 {
		return 0
	}
	if c >= n {
		return n - 1
	}
	return c
}

// wrapCell maps a cell coordinate into [0, n) for periodic dimensions;
// returns -1 when out of range on non-periodic dimensions.
func wrapCell(c, n int, periodic bool) int {
	if c >= 0 && c < n {
		return c
	}
	if !periodic {
		return -1
	}
	c %= n
	if c < 0 {
		c += n
	}
	return c
}

// minImage returns the minimum-image displacement d for a periodic dimension
// of length l.
func minImage(d, l float64, periodic bool) float64 {
	if !periodic {
		return d
	}
	if d > l/2 {
		return d - l
	}
	if d < -l/2 {
		return d + l
	}
	return d
}

// Displacement returns the minimum-image displacement vector from particle j
// to particle i and its squared norm.
func (g *Grid) Displacement(i, j int) (dx, dy, dz, r2 float64) {
	dx = minImage(g.x[i]-g.x[j], g.box.Lx(), g.box.PBCx)
	dy = minImage(g.y[i]-g.y[j], g.box.Ly(), g.box.PBCy)
	dz = minImage(g.z[i]-g.z[j], g.box.Lz(), g.box.PBCz)
	r2 = dx*dx + dy*dy + dz*dz
	return
}

// ForEachNeighbor invokes fn for every particle j != i within radius of
// particle i, passing the displacement (xi - xj) and distance. The maximum
// useful radius is the one the grid was built for; larger radii miss
// neighbors.
func (g *Grid) ForEachNeighbor(i int, radius float64, fn func(j int, dx, dy, dz, dist float64)) {
	r2max := radius * radius
	cx := int((g.x[i] - g.box.Xmin) / g.cellSize[0])
	cy := int((g.y[i] - g.box.Ymin) / g.cellSize[1])
	cz := int((g.z[i] - g.box.Zmin) / g.cellSize[2])
	// Number of cells to scan per direction: radius may span multiple cells
	// when it exceeds the cell size (possible only if caller exceeded
	// maxRadius; we still handle it correctly up to the scan width).
	xs := axisCells(cx, scanWidth(radius, g.cellSize[0]), g.nx, g.box.PBCx)
	ys := axisCells(cy, scanWidth(radius, g.cellSize[1]), g.ny, g.box.PBCy)
	zs := axisCells(cz, scanWidth(radius, g.cellSize[2]), g.nz, g.box.PBCz)
	for _, zc := range zs {
		for _, yc := range ys {
			for _, xc := range xs {
				c := g.cellIndex(xc, yc, zc)
				for k := g.cellOff[c]; k < g.cellOff[c+1]; k++ {
					j := g.order[k]
					if int(j) == i {
						continue
					}
					dx, dy, dz, r2 := g.Displacement(i, int(j))
					if r2 < r2max {
						fn(int(j), dx, dy, dz, math.Sqrt(r2))
					}
				}
			}
		}
	}
}

// axisCells returns the distinct cell coordinates to scan along one axis for
// a query at cell c with scan half-width s. Periodic wrap-around never
// visits a cell twice, even when the scan window exceeds the grid size.
func axisCells(c, s, n int, periodic bool) []int {
	if 2*s+1 >= n {
		// Window covers the whole axis: scan every cell once.
		all := make([]int, n)
		for i := range all {
			all[i] = i
		}
		return all
	}
	out := make([]int, 0, 2*s+1)
	for d := -s; d <= s; d++ {
		if w := wrapCell(c+d, n, periodic); w >= 0 {
			out = append(out, w)
		}
	}
	return out
}

func scanWidth(radius, cell float64) int {
	w := int(math.Ceil(radius / cell))
	if w < 1 {
		w = 1
	}
	return w
}

// Neighbors collects the indices of all neighbors of particle i within
// radius. Intended for tests and diagnostics; hot paths use ForEachNeighbor.
func (g *Grid) Neighbors(i int, radius float64) []int {
	var out []int
	g.ForEachNeighbor(i, radius, func(j int, _, _, _, _ float64) {
		out = append(out, j)
	})
	return out
}

// CountNeighbors returns the number of neighbors of particle i within radius.
func (g *Grid) CountNeighbors(i int, radius float64) int {
	n := 0
	g.ForEachNeighbor(i, radius, func(int, float64, float64, float64, float64) { n++ })
	return n
}
