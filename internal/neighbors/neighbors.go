// Package neighbors provides fixed-radius neighbor search for SPH using a
// uniform cell grid (cell-linked lists), with optional periodic boundaries.
//
// The grid resolution adapts to the search radius so that each query scans
// at most 27 cells. Queries are safe to run concurrently once the grid is
// built, which the SPH pipeline exploits with one worker per core.
package neighbors

import (
	"math"
	"sync"

	"sphenergy/internal/par"
	"sphenergy/internal/sfc"
)

// Searcher is the neighbor-search contract shared by the cell grid and the
// octree backend; the SPH pipeline works against this interface.
type Searcher interface {
	// ForEachNeighbor invokes fn for every particle j != i within radius of
	// particle i, passing the displacement (xi - xj) and distance.
	ForEachNeighbor(i int, radius float64, fn func(j int, dx, dy, dz, dist float64))
	// CountNeighbors returns the number of neighbors within radius.
	CountNeighbors(i int, radius float64) int
}

// Grid is a uniform-cell acceleration structure over a particle set. Cell
// contents are stored CSR-style: cellOff[c]..cellOff[c+1] indexes into
// order, which lists particle indices grouped by cell in ascending order.
// The ascending order is invariant across serial and parallel builds, so
// query iteration order — and therefore the floating-point summation order
// of the SPH kernels — is deterministic.
type Grid struct {
	box        sfc.Box
	nx, ny, nz int
	cellSize   [3]float64
	cellOff    []int32 // ncells+1 prefix offsets into order
	order      []int32 // particle indices grouped by cell, ascending within each
	x, y, z    []float64

	// Binning scratch, kept on the grid so BuildGridInto rebuilds without
	// allocating once the buffers have warmed up to the problem size.
	cells  []int32 // per-particle cell index
	counts []int32 // serial build: per-cell counters
	hist   []int32 // parallel build: per-worker cell histograms
}

// parallelBuildMaxCells bounds the per-worker histogram memory of the
// parallel build (workers × ncells int32 counters); grids finer than this
// fall back to the serial counting sort.
const parallelBuildMaxCells = 1 << 20

// parallelBuildMinN is the particle count below which the serial build wins.
const parallelBuildMinN = 1 << 14

// BuildGrid creates a search grid for particles at (x, y, z) in the box,
// sized for queries up to maxRadius.
func BuildGrid(box sfc.Box, x, y, z []float64, maxRadius float64) *Grid {
	return BuildGridInto(nil, box, x, y, z, maxRadius)
}

// BuildGridInto is BuildGrid with buffer reuse: when g is non-nil its CSR
// arrays and binning scratch are recycled, so steady-state rebuilds (same
// particle count, same resolution) perform no allocations. The resulting
// layout is identical to a fresh BuildGrid. Returns g (or a new grid when
// g is nil); any outstanding queries against the previous contents must
// have finished.
func BuildGridInto(g *Grid, box sfc.Box, x, y, z []float64, maxRadius float64) *Grid {
	if maxRadius <= 0 {
		panic("neighbors: maxRadius must be positive")
	}
	if g == nil {
		g = &Grid{}
	}
	n := len(x)
	g.box, g.x, g.y, g.z = box, x, y, z
	g.nx = gridDim(box.Lx(), maxRadius)
	g.ny = gridDim(box.Ly(), maxRadius)
	g.nz = gridDim(box.Lz(), maxRadius)
	g.cellSize = [3]float64{box.Lx() / float64(g.nx), box.Ly() / float64(g.ny), box.Lz() / float64(g.nz)}
	ncells := g.nx * g.ny * g.nz
	g.cellOff = growInt32(g.cellOff, ncells+1)
	g.order = growInt32(g.order, n)
	workers := par.MaxWorkers()
	if workers > 1 && n >= parallelBuildMinN && ncells <= parallelBuildMaxCells {
		g.binParallel(ncells, workers)
	} else {
		g.binSerial(ncells)
	}
	return g
}

// growInt32 resizes s to n entries, reallocating only on capacity growth.
// Contents are unspecified; callers overwrite or zero as needed.
func growInt32(s []int32, n int) []int32 {
	if cap(s) < n {
		return make([]int32, n)
	}
	return s[:n]
}

// binSerial fills the CSR layout with a two-pass counting sort.
func (g *Grid) binSerial(ncells int) {
	n := len(g.x)
	g.counts = growInt32(g.counts, ncells)
	g.cells = growInt32(g.cells, n)
	counts := g.counts
	cells := g.cells
	for i := range counts {
		counts[i] = 0
	}
	for i := 0; i < n; i++ {
		c := g.cellOf(g.x[i], g.y[i], g.z[i])
		cells[i] = int32(c)
		counts[c]++
	}
	off := int32(0)
	for c := 0; c < ncells; c++ {
		g.cellOff[c] = off
		off += counts[c]
		counts[c] = g.cellOff[c] // becomes the fill cursor
	}
	g.cellOff[ncells] = off
	for i := 0; i < n; i++ {
		c := cells[i]
		g.order[counts[c]] = int32(i)
		counts[c]++
	}
}

// binParallel fills the CSR layout with per-worker cell histograms: each
// worker owns a contiguous particle range, counts its per-cell occupancy,
// and — after a serial scan assigns every (worker, cell) pair its exclusive
// start — scatters its particles without atomics. Within a cell, worker w's
// particles precede worker w+1's and each worker scans ascending, so the
// final order is ascending particle index, identical to binSerial.
func (g *Grid) binParallel(ncells, workers int) {
	n := len(g.x)
	chunk := (n + workers - 1) / workers
	g.hist = growInt32(g.hist, workers*ncells)
	g.cells = growInt32(g.cells, n)
	hist := g.hist
	cells := g.cells
	for i := range hist {
		hist[i] = 0
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lo := w * chunk
		if lo >= n {
			break
		}
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			h := hist[w*ncells : (w+1)*ncells]
			for i := lo; i < hi; i++ {
				c := g.cellOf(g.x[i], g.y[i], g.z[i])
				cells[i] = int32(c)
				h[c]++
			}
		}(w, lo, hi)
	}
	wg.Wait()
	off := int32(0)
	for c := 0; c < ncells; c++ {
		g.cellOff[c] = off
		for w := 0; w < workers; w++ {
			t := hist[w*ncells+c]
			hist[w*ncells+c] = off
			off += t
		}
	}
	g.cellOff[ncells] = off
	for w := 0; w < workers; w++ {
		lo := w * chunk
		if lo >= n {
			break
		}
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			h := hist[w*ncells : (w+1)*ncells]
			for i := lo; i < hi; i++ {
				c := cells[i]
				g.order[h[c]] = int32(i)
				h[c]++
			}
		}(w, lo, hi)
	}
	wg.Wait()
}

func gridDim(extent, radius float64) int {
	d := int(extent / radius)
	if d < 1 {
		d = 1
	}
	// Cap grid dimensions to bound memory for tiny radii.
	if d > 512 {
		d = 512
	}
	return d
}

func (g *Grid) cellIndex(cx, cy, cz int) int {
	return (cz*g.ny+cy)*g.nx + cx
}

func (g *Grid) cellOf(x, y, z float64) int {
	cx := clampCell(int((x-g.box.Xmin)/g.cellSize[0]), g.nx)
	cy := clampCell(int((y-g.box.Ymin)/g.cellSize[1]), g.ny)
	cz := clampCell(int((z-g.box.Zmin)/g.cellSize[2]), g.nz)
	return g.cellIndex(cx, cy, cz)
}

func clampCell(c, n int) int {
	if c < 0 {
		return 0
	}
	if c >= n {
		return n - 1
	}
	return c
}

// wrapCell maps a cell coordinate into [0, n) for periodic dimensions;
// returns -1 when out of range on non-periodic dimensions.
func wrapCell(c, n int, periodic bool) int {
	if c >= 0 && c < n {
		return c
	}
	if !periodic {
		return -1
	}
	c %= n
	if c < 0 {
		c += n
	}
	return c
}

// minImage returns the minimum-image displacement d for a periodic dimension
// of length l.
func minImage(d, l float64, periodic bool) float64 {
	if !periodic {
		return d
	}
	if d > l/2 {
		return d - l
	}
	if d < -l/2 {
		return d + l
	}
	return d
}

// MinImage returns the minimum-image displacement d for a (possibly
// periodic) dimension of length l. It is the exact arithmetic the grid's
// Displacement uses, exported so callers refreshing cached pair lists
// reproduce grid-built displacements bit for bit.
func MinImage(d, l float64, periodic bool) float64 {
	return minImage(d, l, periodic)
}

// Displacement returns the minimum-image displacement vector from particle j
// to particle i and its squared norm.
func (g *Grid) Displacement(i, j int) (dx, dy, dz, r2 float64) {
	dx = minImage(g.x[i]-g.x[j], g.box.Lx(), g.box.PBCx)
	dy = minImage(g.y[i]-g.y[j], g.box.Ly(), g.box.PBCy)
	dz = minImage(g.z[i]-g.z[j], g.box.Lz(), g.box.PBCz)
	r2 = dx*dx + dy*dy + dz*dz
	return
}

// axisCell is one cell coordinate of a query's scan window, annotated with
// the squared minimum distance from the query coordinate to the cell's slab
// along that axis (0 for the query's own cell).
type axisCell struct {
	c  int32
	d2 float64
}

// axisBufEntries sizes the stack-allocated scan windows of ForEachNeighbor:
// it covers half-widths up to 16 (and whole axes up to 33 cells) without
// touching the heap; SPH queries use half-width 1.
const axisBufEntries = 33

// ForEachNeighbor invokes fn for every particle j != i within radius of
// particle i, passing the displacement (xi - xj) and distance. The maximum
// useful radius is the one the grid was built for; larger radii miss
// neighbors.
//
// Cells whose nearest point along the scan window already lies beyond the
// radius are skipped wholesale (cell-distance pruning); the surviving cells
// are visited in the same order as the unpruned scan, so iteration order —
// and therefore downstream floating-point summation order — is unchanged.
func (g *Grid) ForEachNeighbor(i int, radius float64, fn func(j int, dx, dy, dz, dist float64)) {
	r2max := radius * radius
	// Slab distances carry a few ulps of rounding; widen the pruning bound
	// so a cell can never be rejected for a pair the unpruned scan admits.
	r2prune := r2max * (1 + 0x1p-40)
	px, py, pz := g.x[i], g.y[i], g.z[i]
	cx := int((px - g.box.Xmin) / g.cellSize[0])
	cy := int((py - g.box.Ymin) / g.cellSize[1])
	cz := int((pz - g.box.Zmin) / g.cellSize[2])
	// Number of cells to scan per direction: radius may span multiple cells
	// when it exceeds the cell size (possible only if caller exceeded
	// maxRadius; we still handle it correctly up to the scan width).
	var xb, yb, zb [axisBufEntries]axisCell
	xs := axisScan(xb[:0], cx, scanWidth(radius, g.cellSize[0]), g.nx, g.box.PBCx, px, g.box.Xmin, g.cellSize[0])
	ys := axisScan(yb[:0], cy, scanWidth(radius, g.cellSize[1]), g.ny, g.box.PBCy, py, g.box.Ymin, g.cellSize[1])
	zs := axisScan(zb[:0], cz, scanWidth(radius, g.cellSize[2]), g.nz, g.box.PBCz, pz, g.box.Zmin, g.cellSize[2])
	// The point loop below is the hottest code in the SPH step (every list
	// build and candidate gather funnels through it), so the box lengths,
	// half-lengths, and coordinate slices are hoisted and the minimum-image
	// fold is inlined — the arithmetic is exactly Displacement's, term for
	// term, keeping admitted pairs and their stored values bit-identical.
	lx, ly, lz := g.box.Lx(), g.box.Ly(), g.box.Lz()
	hx, hy, hz := lx/2, ly/2, lz/2
	pbx, pby, pbz := g.box.PBCx, g.box.PBCy, g.box.PBCz
	gx, gy, gz := g.x, g.y, g.z
	cellOff, order := g.cellOff, g.order
	for _, zc := range zs {
		if zc.d2 > r2prune {
			continue
		}
		for _, yc := range ys {
			dzy := zc.d2 + yc.d2
			if dzy > r2prune {
				continue
			}
			for _, xc := range xs {
				if dzy+xc.d2 > r2prune {
					continue
				}
				c := g.cellIndex(int(xc.c), int(yc.c), int(zc.c))
				for k := cellOff[c]; k < cellOff[c+1]; k++ {
					j := int(order[k])
					if j == i {
						continue
					}
					dx := px - gx[j]
					if pbx {
						if dx > hx {
							dx -= lx
						} else if dx < -hx {
							dx += lx
						}
					}
					dy := py - gy[j]
					if pby {
						if dy > hy {
							dy -= ly
						} else if dy < -hy {
							dy += ly
						}
					}
					dz := pz - gz[j]
					if pbz {
						if dz > hz {
							dz -= lz
						} else if dz < -hz {
							dz += lz
						}
					}
					r2 := dx*dx + dy*dy + dz*dz
					if r2 < r2max {
						fn(j, dx, dy, dz, math.Sqrt(r2))
					}
				}
			}
		}
	}
}

// axisScan returns the distinct cell coordinates to scan along one axis for
// a query at cell c with scan half-width s, each annotated with the squared
// minimum distance from query coordinate p to the cell's slab. Periodic
// wrap-around never visits a cell twice, even when the scan window exceeds
// the grid size. Wrapped offsets keep their unwrapped slab distance, which
// stays a valid minimum-image lower bound because the window is narrower
// than the axis (2s+1 < n); when it is not, the whole axis is scanned
// unpruned. buf supplies the (typically stack-resident) backing storage.
func axisScan(buf []axisCell, c, s, n int, periodic bool, p, min, cell float64) []axisCell {
	if 2*s+1 >= n {
		// Window covers the whole axis: scan every cell once, unpruned.
		if cap(buf) < n {
			buf = make([]axisCell, 0, n)
		}
		for i := 0; i < n; i++ {
			buf = append(buf, axisCell{c: int32(i)})
		}
		return buf
	}
	if cap(buf) < 2*s+1 {
		buf = make([]axisCell, 0, 2*s+1)
	}
	for d := -s; d <= s; d++ {
		w := wrapCell(c+d, n, periodic)
		if w < 0 {
			continue
		}
		var dist float64
		switch {
		case d > 0: // slab above the query: nearest point is its lower edge
			dist = min + float64(c+d)*cell - p
		case d < 0: // slab below the query: nearest point is its upper edge
			dist = p - (min + float64(c+d+1)*cell)
		}
		if dist < 0 {
			dist = 0 // query sits inside or on the edge (rounding)
		}
		buf = append(buf, axisCell{c: int32(w), d2: dist * dist})
	}
	return buf
}

func scanWidth(radius, cell float64) int {
	w := int(math.Ceil(radius / cell))
	if w < 1 {
		w = 1
	}
	return w
}

// Neighbors collects the indices of all neighbors of particle i within
// radius. Intended for tests and diagnostics; hot paths use ForEachNeighbor.
func (g *Grid) Neighbors(i int, radius float64) []int {
	var out []int
	g.ForEachNeighbor(i, radius, func(j int, _, _, _, _ float64) {
		out = append(out, j)
	})
	return out
}

// CountNeighbors returns the number of neighbors of particle i within radius.
func (g *Grid) CountNeighbors(i int, radius float64) int {
	n := 0
	g.ForEachNeighbor(i, radius, func(int, float64, float64, float64, float64) { n++ })
	return n
}
