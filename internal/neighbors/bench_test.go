package neighbors

import (
	"testing"

	"sphenergy/internal/sfc"
)

// Benchmarks comparing the two search backends (an ablation on the
// neighbor-search design choice).

func benchPoints(n int) (sfc.Box, []float64, []float64, []float64) {
	box := sfc.NewPeriodicCube(0, 1)
	x, y, z := randomPoints(box, n, 7)
	return box, x, y, z
}

func BenchmarkGridBuild(b *testing.B) {
	box, x, y, z := benchPoints(50000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		BuildGrid(box, x, y, z, 0.05)
	}
}

// BenchmarkGridBuildReuse is the steady-state path the SPH loop takes: the
// same Grid is rebuilt in place every step, so after warm-up the allocation
// column should read zero.
func BenchmarkGridBuildReuse(b *testing.B) {
	box, x, y, z := benchPoints(50000)
	var g *Grid
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g = BuildGridInto(g, box, x, y, z, 0.05)
	}
}

func BenchmarkTreeBuild(b *testing.B) {
	box, x, y, z := benchPoints(50000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		BuildTree(box, x, y, z, 64)
	}
}

func BenchmarkGridQuery(b *testing.B) {
	box, x, y, z := benchPoints(50000)
	g := BuildGrid(box, x, y, z, 0.05)
	b.ReportAllocs()
	b.ResetTimer()
	total := 0
	for i := 0; i < b.N; i++ {
		total += g.CountNeighbors(i%50000, 0.05)
	}
	b.ReportMetric(float64(total)/float64(b.N), "neighbors/query")
}

func BenchmarkTreeQuery(b *testing.B) {
	box, x, y, z := benchPoints(50000)
	ts := BuildTree(box, x, y, z, 64)
	b.ResetTimer()
	total := 0
	for i := 0; i < b.N; i++ {
		total += ts.CountNeighbors(i%50000, 0.05)
	}
	b.ReportMetric(float64(total)/float64(b.N), "neighbors/query")
}

// BenchmarkSlabGather is the steady-state cell-slab candidate sweep: one
// full-population gather per iteration over a warm SlabSweep. After warm-up
// the allocation column must read zero — this is the kernel the SPH
// cell-slab rebuild runs.
func BenchmarkSlabGather(b *testing.B) {
	benchmarkSlabGather(b, 50000, 0.05)
}

// BenchmarkSlabGatherDense matches the candidate density of the SPH skin
// rebuild at 30³ (~150 candidates per particle), where the folded sweep's
// advantage over the per-row walk is decided.
func BenchmarkSlabGatherDense(b *testing.B) {
	benchmarkSlabGather(b, 27000, 0.111)
}

func benchmarkSlabGather(b *testing.B, n int, rmax float64) {
	box, x, y, z := benchPoints(n)
	cut := mixedCuts(n, rmax, 7)
	g := BuildGrid(box, x, y, z, rmax)
	var ss SlabSweep
	off, idx, r2, ok := ss.Gather(g, cut, nil, nil, nil)
	if !ok {
		b.Fatal("sweep rejected the bench grid")
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		off, idx, r2, _ = ss.Gather(g, cut, off, idx, r2)
	}
	b.ReportMetric(float64(off[n])/float64(n), "candidates/particle")
	_, _ = idx, r2
}

// BenchmarkWalkGatherCSR is the per-row ForEachNeighbor equivalent of
// BenchmarkSlabGather (identical output CSR), the baseline the folded
// half-sphere sweep is measured against.
func BenchmarkWalkGatherCSR(b *testing.B) {
	benchmarkWalkGatherCSR(b, 50000, 0.05)
}

// BenchmarkWalkGatherCSRDense is the walk baseline at the SPH skin-rebuild
// candidate density (see BenchmarkSlabGatherDense).
func BenchmarkWalkGatherCSRDense(b *testing.B) {
	benchmarkWalkGatherCSR(b, 27000, 0.111)
}

func benchmarkWalkGatherCSR(b *testing.B, n int, rmax float64) {
	box, x, y, z := benchPoints(n)
	cut := mixedCuts(n, rmax, 7)
	g := BuildGrid(box, x, y, z, rmax)
	off := make([]int32, n+1)
	idx := make([]int32, 0, 1<<20)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		idx = idx[:0]
		for p := 0; p < n; p++ {
			off[p] = int32(len(idx))
			g.ForEachNeighbor(p, cut[p], func(j int, _, _, _, _ float64) {
				idx = append(idx, int32(j))
			})
		}
		off[n] = int32(len(idx))
	}
	b.ReportMetric(float64(off[n])/float64(n), "candidates/particle")
}
