package neighbors

import (
	"testing"

	"sphenergy/internal/sfc"
)

// Benchmarks comparing the two search backends (an ablation on the
// neighbor-search design choice).

func benchPoints(n int) (sfc.Box, []float64, []float64, []float64) {
	box := sfc.NewPeriodicCube(0, 1)
	x, y, z := randomPoints(box, n, 7)
	return box, x, y, z
}

func BenchmarkGridBuild(b *testing.B) {
	box, x, y, z := benchPoints(50000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		BuildGrid(box, x, y, z, 0.05)
	}
}

// BenchmarkGridBuildReuse is the steady-state path the SPH loop takes: the
// same Grid is rebuilt in place every step, so after warm-up the allocation
// column should read zero.
func BenchmarkGridBuildReuse(b *testing.B) {
	box, x, y, z := benchPoints(50000)
	var g *Grid
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g = BuildGridInto(g, box, x, y, z, 0.05)
	}
}

func BenchmarkTreeBuild(b *testing.B) {
	box, x, y, z := benchPoints(50000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		BuildTree(box, x, y, z, 64)
	}
}

func BenchmarkGridQuery(b *testing.B) {
	box, x, y, z := benchPoints(50000)
	g := BuildGrid(box, x, y, z, 0.05)
	b.ReportAllocs()
	b.ResetTimer()
	total := 0
	for i := 0; i < b.N; i++ {
		total += g.CountNeighbors(i%50000, 0.05)
	}
	b.ReportMetric(float64(total)/float64(b.N), "neighbors/query")
}

func BenchmarkTreeQuery(b *testing.B) {
	box, x, y, z := benchPoints(50000)
	ts := BuildTree(box, x, y, z, 64)
	b.ResetTimer()
	total := 0
	for i := 0; i < b.N; i++ {
		total += ts.CountNeighbors(i%50000, 0.05)
	}
	b.ReportMetric(float64(total)/float64(b.N), "neighbors/query")
}
