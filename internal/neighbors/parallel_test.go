package neighbors

import (
	"runtime"
	"testing"

	"sphenergy/internal/rng"
	"sphenergy/internal/sfc"
)

// TestParallelGridBuildMatchesSerial verifies the layout contract of the
// parallel cell binning: cellOff and order must be byte-identical to the
// serial counting sort (ascending particle index within each cell), which
// is what keeps SPH floating-point summation order deterministic across
// worker counts.
func TestParallelGridBuildMatchesSerial(t *testing.T) {
	const n = 20000 // above parallelBuildMinN so the parallel path engages
	r := rng.New(7)
	x := make([]float64, n)
	y := make([]float64, n)
	z := make([]float64, n)
	for i := 0; i < n; i++ {
		x[i] = r.Float64()
		y[i] = r.Float64()
		z[i] = r.Float64()
	}
	box := sfc.NewPeriodicCube(0, 1)

	old := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(old)
	gp := BuildGrid(box, x, y, z, 0.05)
	runtime.GOMAXPROCS(1)
	gs := BuildGrid(box, x, y, z, 0.05)

	if len(gp.cellOff) != len(gs.cellOff) {
		t.Fatalf("cell counts differ: %d vs %d", len(gp.cellOff), len(gs.cellOff))
	}
	for c := range gp.cellOff {
		if gp.cellOff[c] != gs.cellOff[c] {
			t.Fatalf("cellOff[%d]: parallel %d serial %d", c, gp.cellOff[c], gs.cellOff[c])
		}
	}
	for k := range gp.order {
		if gp.order[k] != gs.order[k] {
			t.Fatalf("order[%d]: parallel %d serial %d", k, gp.order[k], gs.order[k])
		}
	}
	// Within-cell ordering must be ascending (the determinism invariant).
	for c := 0; c+1 < len(gp.cellOff); c++ {
		for k := gp.cellOff[c] + 1; k < gp.cellOff[c+1]; k++ {
			if gp.order[k-1] >= gp.order[k] {
				t.Fatalf("cell %d not ascending at slot %d", c, k)
			}
		}
	}
}
