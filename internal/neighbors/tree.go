package neighbors

import (
	"math"
	"sort"

	"sphenergy/internal/cornerstone"
	"sphenergy/internal/sfc"
)

// TreeSearch is the octree-based neighbor search backend: particles are
// sorted along the SFC, a cornerstone octree is built over their keys, and
// queries walk the linked octree pruning nodes geometrically. This is the
// search structure SPH-EXA itself uses; the cell grid (Grid) is the
// simpler alternative. Both return identical neighbor sets — the tests
// cross-check them — and the benchmark in bench_test.go compares their
// costs.
type TreeSearch struct {
	box    sfc.Box
	tree   cornerstone.Tree
	linked *cornerstone.LinkedOctree

	// Particle storage in SFC order.
	order   []int32 // sorted position -> original particle index
	x, y, z []float64
	// leafStart[i] is the offset of leaf i's particles in order.
	leafStart []int32
}

// BuildTree constructs the search structure; bucketSize controls the leaf
// particle count (64 is a good default).
func BuildTree(box sfc.Box, x, y, z []float64, bucketSize int) *TreeSearch {
	n := len(x)
	keys := make([]sfc.Key, n)
	for i := 0; i < n; i++ {
		keys[i] = box.KeyOf(x[i], y[i], z[i])
	}
	order := make([]int32, n)
	for i := range order {
		order[i] = int32(i)
	}
	sort.Slice(order, func(a, b int) bool { return keys[order[a]] < keys[order[b]] })
	sortedKeys := make([]sfc.Key, n)
	for i, o := range order {
		sortedKeys[i] = keys[o]
	}
	tree := cornerstone.Build(sortedKeys, bucketSize)
	counts := tree.NodeCounts(sortedKeys)
	linked, err := cornerstone.BuildLinked(tree, counts)
	if err != nil {
		panic("neighbors: " + err.Error()) // Build always yields a valid tree
	}
	leafStart := make([]int32, tree.NumLeaves()+1)
	for i, c := range counts {
		leafStart[i+1] = leafStart[i] + int32(c)
	}
	return &TreeSearch{
		box: box, tree: tree, linked: linked,
		order: order, x: x, y: y, z: z,
		leafStart: leafStart,
	}
}

// ForEachNeighbor invokes fn for every particle j != i within radius of
// particle i, with the same callback contract as Grid.ForEachNeighbor.
func (t *TreeSearch) ForEachNeighbor(i int, radius float64, fn func(j int, dx, dy, dz, dist float64)) {
	r2max := radius * radius
	cx, cy, cz := t.x[i], t.y[i], t.z[i]
	t.linked.Walk(func(_ int, n cornerstone.OctreeNode) bool {
		lo, hi := cornerstone.NodeBounds(t.box, n.Start, n.End)
		if !cornerstone.SphereOverlapsBounds(t.box, cx, cy, cz, radius, lo, hi) {
			return false
		}
		if !n.IsLeaf() {
			return true
		}
		for s := t.leafStart[n.LeafIndex]; s < t.leafStart[n.LeafIndex+1]; s++ {
			j := int(t.order[s])
			if j == i {
				continue
			}
			dx := minImage(cx-t.x[j], t.box.Lx(), t.box.PBCx)
			dy := minImage(cy-t.y[j], t.box.Ly(), t.box.PBCy)
			dz := minImage(cz-t.z[j], t.box.Lz(), t.box.PBCz)
			r2 := dx*dx + dy*dy + dz*dz
			if r2 < r2max {
				fn(j, dx, dy, dz, math.Sqrt(r2))
			}
		}
		return false
	})
}

// Neighbors collects neighbor indices (diagnostics path).
func (t *TreeSearch) Neighbors(i int, radius float64) []int {
	var out []int
	t.ForEachNeighbor(i, radius, func(j int, _, _, _, _ float64) {
		out = append(out, j)
	})
	return out
}

// CountNeighbors returns the neighbor count of particle i within radius.
func (t *TreeSearch) CountNeighbors(i int, radius float64) int {
	n := 0
	t.ForEachNeighbor(i, radius, func(int, float64, float64, float64, float64) { n++ })
	return n
}

// NumLeaves exposes the underlying tree size for diagnostics.
func (t *TreeSearch) NumLeaves() int { return t.tree.NumLeaves() }
