package neighbors

import (
	"math"
	"sort"
	"testing"
	"testing/quick"

	"sphenergy/internal/rng"
	"sphenergy/internal/sfc"
)

// bruteNeighbors is the O(n²) reference implementation.
func bruteNeighbors(box sfc.Box, x, y, z []float64, i int, radius float64) []int {
	var out []int
	r2 := radius * radius
	for j := range x {
		if j == i {
			continue
		}
		dx := minImage(x[i]-x[j], box.Lx(), box.PBCx)
		dy := minImage(y[i]-y[j], box.Ly(), box.PBCy)
		dz := minImage(z[i]-z[j], box.Lz(), box.PBCz)
		if dx*dx+dy*dy+dz*dz < r2 {
			out = append(out, j)
		}
	}
	sort.Ints(out)
	return out
}

func randomPoints(box sfc.Box, n int, seed uint64) (x, y, z []float64) {
	r := rng.New(seed)
	x = make([]float64, n)
	y = make([]float64, n)
	z = make([]float64, n)
	for i := 0; i < n; i++ {
		x[i] = box.Xmin + r.Float64()*box.Lx()
		y[i] = box.Ymin + r.Float64()*box.Ly()
		z[i] = box.Zmin + r.Float64()*box.Lz()
	}
	return
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestMatchesBruteForceOpenBox(t *testing.T) {
	box := sfc.NewCube(0, 1)
	x, y, z := randomPoints(box, 500, 1)
	const radius = 0.11
	g := BuildGrid(box, x, y, z, radius)
	for i := 0; i < 50; i++ {
		got := g.Neighbors(i, radius)
		sort.Ints(got)
		want := bruteNeighbors(box, x, y, z, i, radius)
		if !equalInts(got, want) {
			t.Fatalf("particle %d: got %v, want %v", i, got, want)
		}
	}
}

func TestMatchesBruteForcePeriodic(t *testing.T) {
	box := sfc.NewPeriodicCube(0, 1)
	x, y, z := randomPoints(box, 500, 2)
	const radius = 0.13
	g := BuildGrid(box, x, y, z, radius)
	for i := 0; i < 50; i++ {
		got := g.Neighbors(i, radius)
		sort.Ints(got)
		want := bruteNeighbors(box, x, y, z, i, radius)
		if !equalInts(got, want) {
			t.Fatalf("particle %d: got %v, want %v", i, got, want)
		}
	}
}

func TestPeriodicFindsWrappedNeighbors(t *testing.T) {
	box := sfc.NewPeriodicCube(0, 1)
	x := []float64{0.01, 0.99}
	y := []float64{0.5, 0.5}
	z := []float64{0.5, 0.5}
	g := BuildGrid(box, x, y, z, 0.1)
	if n := g.CountNeighbors(0, 0.1); n != 1 {
		t.Errorf("wrapped neighbor not found: count = %d", n)
	}
	// In the open box they are far apart.
	ob := sfc.NewCube(0, 1)
	go2 := BuildGrid(ob, x, y, z, 0.1)
	if n := go2.CountNeighbors(0, 0.1); n != 0 {
		t.Errorf("open box found phantom neighbor: count = %d", n)
	}
}

func TestNoDuplicateNeighborsSmallGrid(t *testing.T) {
	// A radius comparable to the box size forces the whole-axis scan path;
	// each neighbor must still appear exactly once.
	box := sfc.NewPeriodicCube(0, 1)
	x, y, z := randomPoints(box, 60, 3)
	const radius = 0.45
	g := BuildGrid(box, x, y, z, radius)
	for i := 0; i < len(x); i++ {
		ns := g.Neighbors(i, radius)
		seen := map[int]bool{}
		for _, j := range ns {
			if seen[j] {
				t.Fatalf("particle %d: duplicate neighbor %d", i, j)
			}
			if j == i {
				t.Fatalf("particle %d listed as its own neighbor", i)
			}
			seen[j] = true
		}
	}
}

func TestDisplacementMinimumImage(t *testing.T) {
	box := sfc.NewPeriodicCube(0, 1)
	x := []float64{0.05, 0.95}
	y := []float64{0.5, 0.5}
	z := []float64{0.5, 0.5}
	g := BuildGrid(box, x, y, z, 0.2)
	dx, _, _, r2 := g.Displacement(0, 1)
	if math.Abs(dx-0.1) > 1e-12 {
		t.Errorf("minimum image dx = %v, want 0.1", dx)
	}
	if math.Abs(r2-0.01) > 1e-12 {
		t.Errorf("r2 = %v, want 0.01", r2)
	}
}

func TestCallbackDistanceConsistency(t *testing.T) {
	box := sfc.NewCube(0, 1)
	x, y, z := randomPoints(box, 200, 4)
	g := BuildGrid(box, x, y, z, 0.15)
	g.ForEachNeighbor(7, 0.15, func(j int, dx, dy, dz, dist float64) {
		if math.Abs(math.Sqrt(dx*dx+dy*dy+dz*dz)-dist) > 1e-12 {
			t.Errorf("dist inconsistent with displacement for neighbor %d", j)
		}
		if dist >= 0.15 {
			t.Errorf("neighbor %d beyond radius: %v", j, dist)
		}
	})
}

func TestQuickPropertyAgainstBruteForce(t *testing.T) {
	f := func(seed uint64, periodic bool) bool {
		box := sfc.NewCube(0, 1)
		if periodic {
			box = sfc.NewPeriodicCube(0, 1)
		}
		x, y, z := randomPoints(box, 120, seed)
		radius := 0.05 + 0.2*float64(seed%7)/7
		g := BuildGrid(box, x, y, z, radius)
		for i := 0; i < 10; i++ {
			got := g.Neighbors(i, radius)
			sort.Ints(got)
			if !equalInts(got, bruteNeighbors(box, x, y, z, i, radius)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestBuildGridPanicsOnBadRadius(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("BuildGrid with radius 0 did not panic")
		}
	}()
	BuildGrid(sfc.NewCube(0, 1), nil, nil, nil, 0)
}

func TestEmptyGrid(t *testing.T) {
	g := BuildGrid(sfc.NewCube(0, 1), []float64{}, []float64{}, []float64{}, 0.1)
	if g == nil {
		t.Fatal("nil grid for empty input")
	}
}
