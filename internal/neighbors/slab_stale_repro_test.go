package neighbors

import (
	"math/rand"
	"runtime"
	"testing"

	"sphenergy/internal/sfc"
)

// Repro: reusing a SlabSweep across gathers whose grid resolution changed
// can replay a stale spill buffer from a worker that the aligned partition
// skips in the second gather.
func TestSlabSweepStaleSpillRepro(t *testing.T) {
	prev := runtime.GOMAXPROCS(32)
	defer runtime.GOMAXPROCS(prev)

	rng := rand.New(rand.NewSource(7))
	n := 20000
	x := make([]float64, n)
	y := make([]float64, n)
	z := make([]float64, n)
	for i := range x {
		x[i] = rng.Float64()
		y[i] = rng.Float64()
		z[i] = rng.Float64()
	}
	box := sfc.NewPeriodicCube(0, 1)

	// Grid A: 16x16x16 = 4096 cells -> chunk=align8(128)=128, all 32 workers active.
	gA := BuildGrid(box, x, y, z, 1.0/16)
	cutA := make([]float64, n)
	for i := range cutA {
		cutA[i] = 0.9 / 16
	}
	// Grid B: 12x12x12 = 1728 cells -> chunk=align8(54)=56, ceil(1728/56)=31
	// active workers; worker 31 skipped.
	gB := BuildGrid(box, x, y, z, 1.0/12)
	cutB := make([]float64, n)
	for i := range cutB {
		cutB[i] = 0.9 / 12
	}

	var reused SlabSweep
	offA, idxA, r2A, ok := reused.Gather(gA, cutA, nil, nil, nil)
	if !ok {
		t.Fatal("gather A infeasible")
	}
	_ = offA
	_ = idxA
	_ = r2A
	off2, idx2, r22, ok := reused.Gather(gB, cutB, nil, nil, nil)
	if !ok {
		t.Fatal("gather B infeasible")
	}

	var fresh SlabSweep
	offF, idxF, r2F, ok := fresh.Gather(gB, cutB, nil, nil, nil)
	if !ok {
		t.Fatal("fresh gather infeasible")
	}

	if len(off2) != len(offF) {
		t.Fatalf("offsets length mismatch: %d vs %d", len(off2), len(offF))
	}
	for i := range offF {
		if off2[i] != offF[i] {
			t.Fatalf("offsets[%d] mismatch: %d vs %d", i, off2[i], offF[i])
		}
	}
	total := int(offF[n])
	for k := 0; k < total; k++ {
		if idx2[k] != idxF[k] {
			t.Fatalf("idx[%d] mismatch: %d vs %d", k, idx2[k], idxF[k])
		}
		if r22[k] != r2F[k] {
			t.Fatalf("r2[%d] mismatch: %v vs %v", k, r22[k], r2F[k])
		}
	}
}
