package neighbors

import "sphenergy/internal/par"

// Cell-slab candidate sweep with a folded half-sphere gather.
//
// ForEachNeighbor answers one query at a time: for every particle it walks
// the 27-cell stencil and evaluates every resident of every cell, so each
// unordered pair (i, j) is examined twice — once from each endpoint. The
// slab sweep instead traverses the grid cell by cell and visits each
// unordered pair exactly once: for every cell it evaluates the intra-cell
// upper triangle plus the 13 "forward" stencil cells (the half with
// lexicographically positive offset), and a single distance evaluation
// decides membership in both directions of the asymmetric per-particle cut
// (r² < cut[i]² admits j into i's row, r² < cut[j]² admits i into j's row).
// Cell contents are pre-gathered into contiguous SoA slabs in grid storage
// order, so the inner distance kernel is a branch-light unrolled loop over
// dense slices instead of a pointer-chasing indexed gather.
//
// The output is a candidate CSR (offsets + neighbor indices) that is
// bit-identical — same pair sets, same within-row order — to what per-row
// ForEachNeighbor queries at radius cut[i] would emit, for any worker
// count. Row order equality is what lets the SPH layer keep every
// downstream guarantee (finishParticle's first-ngmax truncation, checkpoint
// candidate regeneration, 1e-9 pipeline equivalence) without change: the
// walk emits row i's neighbors grouped by stencil cell in rank order
// (rank = (dz+1)·9+(dy+1)·3+(dx+1), ascending) and ascending within each
// cell, and the sweep reproduces exactly that via per-(row, rank) bucket
// cursors. Each bucket is written by exactly one cell-pair block, each
// block is owned by exactly one worker, and records within a block arrive
// in ascending index order, so the fill is deterministic and race-free
// without atomics.

// slabRank is the number of stencil ranks per row (3³ cells); rank 13 is
// the row's own cell, ranks 14..26 the forward half, 0..12 the mirror.
const slabRanks = 27

// slabSerialMinN is the particle count below which the sweep runs on the
// calling goroutine only: spawning workers costs more than the scan, and a
// serial sweep keeps steady-state gathers allocation-free for the
// zero-alloc regression tests (goroutine spawns allocate).
const slabSerialMinN = 1 << 14

// slabRun marks one cell-pair block inside a worker's spill buffer: the
// records [start, next run's start) were emitted while scanning a single
// (cell, stencil-offset) block whose forward rank is rA and mirror rank rB.
type slabRun struct {
	start  int32
	rA, rB uint8
}

// slabRec is one admitted unordered pair: the home-cell endpoint pi, the
// forward-cell endpoint packed with the direction mask in pjf (low 30 bits:
// pj; bit 30: pj belongs in pi's row; bit 31: pi belongs in pj's row), and
// the squared distance (exactly symmetric, so one value serves both
// directions). One 16-byte record per pair keeps the admit path to a
// single append and the replay to a single sequential stream.
type slabRec struct {
	pi  int32
	pjf uint32
	r2  float64
}

const (
	slabIdxMask = 1<<30 - 1
	slabFlagI   = uint32(1) << 30
	slabFlagJ   = uint32(1) << 31
)

// slabSpill is one worker's pair-record buffer.
type slabSpill struct {
	recs []slabRec
	runs []slabRun
}

func (sp *slabSpill) reset() {
	sp.recs = sp.recs[:0]
	sp.runs = sp.runs[:0]
}

func (sp *slabSpill) beginRun(rA, rB uint8) {
	sp.runs = append(sp.runs, slabRun{start: int32(len(sp.recs)), rA: rA, rB: rB})
}

// SlabSweep holds the reusable scratch of the cell-slab candidate gather;
// steady-state Gather calls (same particle count, same grid resolution)
// perform no allocations. The zero value is ready to use.
type SlabSweep struct {
	ox, oy, oz []float64 // particle coordinates in grid storage order
	ocut2      []float64 // squared per-particle cut, grid storage order
	cellMax2   []float64 // per-cell maximum squared cut (j-side prune bound)
	cnt        []int32   // slabRanks per-row bucket counts, then fill cursors
	spills     []*slabSpill
}

// slabFeasible reports whether the grid geometry admits the width-1
// half-stencil sweep: at least 4 cells per axis (so the 27-cell window is
// strictly narrower than every axis, offsets address distinct cells, and
// same-cell / adjacent-cell displacements never need a minimum-image fold)
// and every cut within one cell size (so the width-1 stencil covers every
// admissible pair, like the walk's scanWidth == 1 case).
func slabFeasible(g *Grid, maxCut float64) bool {
	if g.nx < 4 || g.ny < 4 || g.nz < 4 {
		return false
	}
	minCell := g.cellSize[0]
	if g.cellSize[1] < minCell {
		minCell = g.cellSize[1]
	}
	if g.cellSize[2] < minCell {
		minCell = g.cellSize[2]
	}
	return maxCut <= minCell
}

// Gather computes, for every particle i, the candidate set
// {j != i : |minimum-image(x_i - x_j)| ² < cut[i]²} over the given grid as
// a CSR (offsets of length n+1, neighbor indices, squared distances),
// visiting each unordered pair once. The emitted r2 values equal exactly
// what the walk computes for the same pairs, so callers can derive
// bit-identical distances (math.Sqrt(r2)) without re-evaluating
// displacements. offsets, idx and r2 are reused when large enough; the
// (possibly grown) slices are returned. ok is false when the grid geometry
// is infeasible for the sweep (fewer than 4 cells on an axis, or some cut
// exceeding the cell size) — the caller falls back to per-row
// ForEachNeighbor queries, which produce the identical CSR.
func (ss *SlabSweep) Gather(g *Grid, cut []float64, offsets, idx []int32, r2 []float64) (offOut, idxOut []int32, r2Out []float64, ok bool) {
	n := len(g.x)
	if n != len(cut) {
		panic("neighbors: cut length mismatch")
	}
	maxCut := 0.0
	for _, c := range cut {
		if c > maxCut {
			maxCut = c
		}
	}
	// Particle indices share the spill record's pjf word with the two
	// direction bits, so populations beyond 2³⁰ take the walk fallback.
	if !slabFeasible(g, maxCut) || n > slabIdxMask {
		return offsets, idx, r2, false
	}
	ncells := g.nx * g.ny * g.nz

	workers := par.MaxWorkers()
	if n < slabSerialMinN {
		workers = 1
	}
	if workers > ncells {
		workers = ncells
	}
	for len(ss.spills) < workers {
		ss.spills = append(ss.spills, &slabSpill{})
	}

	// Phase 0: gather coordinates and squared cuts into grid storage order
	// (one contiguous SoA slab per cell) and record each cell's maximum
	// squared cut for the j-side prune bound.
	ss.ox = growF64(ss.ox, n)
	ss.oy = growF64(ss.oy, n)
	ss.oz = growF64(ss.oz, n)
	ss.ocut2 = growF64(ss.ocut2, n)
	ss.cellMax2 = growF64(ss.cellMax2, ncells)
	ss.cnt = growInt32(ss.cnt, slabRanks*n)
	// Every row's bucket counters are zeroed in one memclr up front; the
	// per-cell SoA pass no longer touches them, which keeps its stores
	// sequential.
	clear(ss.cnt)
	if workers == 1 {
		// Serial fast path: direct calls, no closures — steady-state
		// gathers stay allocation-free (closures passed to ForWorkers
		// escape to the heap).
		ss.soaCells(g, cut, 0, ncells)
		ss.scanCells(g, 0, 0, ncells)
	} else {
		par.ForWorkers(ncells, workers, func(_, clo, chi int) {
			ss.soaCells(g, cut, clo, chi)
		})
		// Phase 1: folded half-stencil scan. Each worker owns a contiguous
		// cell range; a (cell, forward-offset) block is processed by
		// exactly one worker, which is what makes every (row, rank) bucket
		// single-writer.
		par.ForWorkers(ncells, workers, func(w, clo, chi int) {
			ss.scanCells(g, w, clo, chi)
		})
	}

	// Prefix: row totals become offsets, per-(row, rank) counts become the
	// exclusive fill cursors of the bucket layout.
	offsets = growInt32(offsets, n+1)
	off := int32(0)
	for i := 0; i < n; i++ {
		offsets[i] = off
		base := slabRanks * i
		for r := 0; r < slabRanks; r++ {
			c := ss.cnt[base+r]
			ss.cnt[base+r] = off
			off += c
		}
	}
	offsets[n] = off
	idx = growInt32(idx, int(off))
	r2 = growF64(r2, int(off))

	// Phase 2: deterministic fill. Spills replay in emission order; buckets
	// are disjoint across spills, so this parallelizes without atomics and
	// the result is independent of the worker count.
	if workers == 1 {
		ss.fillSpill(ss.spills[0], idx, r2)
	} else {
		par.ForWorkers(workers, workers, func(_, lo, hi int) {
			for s := lo; s < hi; s++ {
				ss.fillSpill(ss.spills[s], idx, r2)
			}
		})
	}
	return offsets, idx, r2, true
}

// soaCells runs Phase 0 over the cell range [clo, chi): gather coordinates
// and squared cuts into grid storage order and record each cell's maximum
// squared cut.
func (ss *SlabSweep) soaCells(g *Grid, cut []float64, clo, chi int) {
	for c := clo; c < chi; c++ {
		m2 := 0.0
		for k := g.cellOff[c]; k < g.cellOff[c+1]; k++ {
			p := g.order[k]
			ss.ox[k] = g.x[p]
			ss.oy[k] = g.y[p]
			ss.oz[k] = g.z[p]
			c2 := cut[p] * cut[p]
			ss.ocut2[k] = c2
			if c2 > m2 {
				m2 = c2
			}
		}
		ss.cellMax2[c] = m2
	}
}

// scanCells evaluates every unordered pair whose home (lower-ranked) cell
// lies in [clo, chi): the intra-cell upper triangle and the 13 forward
// stencil blocks per cell. A single r² per pair feeds both directed
// membership tests; admitted pairs are spilled with their direction mask
// and counted into the per-(row, rank) buckets.
func (ss *SlabSweep) scanCells(g *Grid, w, clo, chi int) {
	sp := ss.spills[w]
	sp.reset()
	nx, ny, nz := g.nx, g.ny, g.nz
	lx, ly, lz := g.box.Lx(), g.box.Ly(), g.box.Lz()
	hx, hy, hz := lx/2, ly/2, lz/2
	pbx, pby, pbz := g.box.PBCx, g.box.PBCy, g.box.PBCz
	cellOff, order := g.cellOff, g.order
	ox, oy, oz, ocut2 := ss.ox, ss.oy, ss.oz, ss.ocut2
	cnt := ss.cnt
	xmin, ymin, zmin := g.box.Xmin, g.box.Ymin, g.box.Zmin
	cellX, cellY, cellZ := g.cellSize[0], g.cellSize[1], g.cellSize[2]

	for c := clo; c < chi; c++ {
		aLo, aHi := int(cellOff[c]), int(cellOff[c+1])
		if aLo == aHi {
			continue
		}
		cx := c % nx
		cy := (c / nx) % ny
		cz := c / (nx * ny)
		// Cell edge coordinates, in axisScan's exact arithmetic; the prune
		// below measures particle-to-slab distances against them.
		loX := xmin + float64(cx)*cellX
		hiX := xmin + float64(cx+1)*cellX
		loY := ymin + float64(cy)*cellY
		hiY := ymin + float64(cy+1)*cellY
		loZ := zmin + float64(cz)*cellZ
		hiZ := zmin + float64(cz+1)*cellZ

		// Intra-cell upper triangle: same-cell displacements can never wrap
		// (cells are at most a quarter axis wide), so the minimum-image fold
		// is a proven no-op and is skipped.
		sp.beginRun(13, 13)
		cellSelf2 := ss.cellMax2[c]
		ax := ox[aLo:aHi]
		ay := oy[aLo:aHi]
		az := oz[aLo:aHi]
		acut := ocut2[aLo:aHi]
		aord := order[aLo:aHi]
		na := aHi - aLo
		for a := 0; a < na; a++ {
			xi, yi, zi, c2i := ax[a], ay[a], az[a], acut[a]
			ia := aord[a]
			baseI := slabRanks * int(ia)
			cMax := c2i
			if cellSelf2 > cMax {
				cMax = cellSelf2
			}
			nI := int32(0)
			for b := a + 1; b < na; b++ {
				dx := xi - ax[b]
				dy := yi - ay[b]
				dz := zi - az[b]
				r2 := dx*dx + dy*dy + dz*dz
				if r2 < cMax {
					pjf := uint32(aord[b])
					if r2 < c2i {
						pjf |= slabFlagI
						nI++
					}
					if r2 < acut[b] {
						pjf |= slabFlagJ
						cnt[slabRanks*int(aord[b])+13]++
					}
					if pjf > slabIdxMask {
						sp.recs = append(sp.recs, slabRec{pi: ia, pjf: pjf, r2: r2})
					}
				}
			}
			cnt[baseI+13] += nI
		}

		// Forward half stencil: ranks 14..26, offsets (dx, dy, dz) with
		// rank = (dz+1)·9+(dy+1)·3+(dx+1). The mirror rank 26-r is where the
		// reverse direction lands in the forward cell's rows.
		for r := 14; r <= 26; r++ {
			dxc := r%3 - 1
			dyc := r/3%3 - 1
			dzc := r/9 - 1
			bx := wrapCell(cx+dxc, nx, pbx)
			if bx < 0 {
				continue
			}
			by := wrapCell(cy+dyc, ny, pby)
			if by < 0 {
				continue
			}
			bz := wrapCell(cz+dzc, nz, pbz)
			if bz < 0 {
				continue
			}
			bc := g.cellIndex(bx, by, bz)
			bLo, bHi := int(cellOff[bc]), int(cellOff[bc+1])
			if bLo == bHi {
				continue
			}
			// Adjacent unwrapped cells never need the fold. For a wrapped
			// axis with at least 5 cells the fold is provably ALWAYS taken
			// and in a fixed direction: home and forward cell sit on
			// opposite box edges, so |xi - xj| > L - 2·cell ≥ 3L/5 > L/2
			// with margin far beyond any cell-assignment rounding, and the
			// walk's branchy fold reduces to adding a per-block constant
			// shift (same two-operation arithmetic, bit-identical result).
			// That lets wrapped blocks share the unrolled kernel; only a
			// wrapped axis with exactly 4 cells — where the margin is zero
			// and rounding could flip the strict inequality — takes the
			// walk's per-pair branchy fold verbatim.
			var shX, shY, shZ float64
			branchy := false
			if bx != cx+dxc {
				if nx < 5 {
					branchy = true
				}
				if dxc > 0 {
					shX = -lx
				} else {
					shX = lx
				}
			}
			if by != cy+dyc {
				if ny < 5 {
					branchy = true
				}
				if dyc > 0 {
					shY = -ly
				} else {
					shY = ly
				}
			}
			if bz != cz+dzc {
				if nz < 5 {
					branchy = true
				}
				if dzc > 0 {
					shZ = -lz
				} else {
					shZ = lz
				}
			}
			cellB2 := ss.cellMax2[bc] * (1 + 0x1p-40)
			rB := uint8(26 - r)
			sp.beginRun(uint8(r), rB)
			nb := bHi - bLo
			sx := ox[bLo:bHi]
			sy := oy[bLo:bHi]
			sz := oz[bLo:bHi]
			scut := ocut2[bLo:bHi]
			sord := order[bLo:bHi]
			cellM2 := ss.cellMax2[bc]
			for a := 0; a < na; a++ {
				xi, yi, zi, c2i := ax[a], ay[a], az[a], acut[a]
				// cMax screens both directed tests with one register
				// compare: r² at or beyond max(cut_i², max_j cut_j²) can
				// admit in neither direction, so the failing 80+% of
				// evaluations never load the per-particle cut slab.
				cMax := c2i
				if cellM2 > cMax {
					cMax = cellM2
				}
				// Per-particle slab-distance prune: if the nearest point of
				// cell B (unwrapped axis distances, valid minimum-image
				// lower bounds because the window is narrower than the
				// axis) is beyond both directed cut bounds, no pair with
				// this particle can be admitted. The 2⁻⁴⁰ widening mirrors
				// ForEachNeighbor's, so rounding never drops a true pair.
				var sdx, sdy, sdz float64
				if dxc > 0 {
					sdx = hiX - xi
				} else if dxc < 0 {
					sdx = xi - loX
				}
				if dyc > 0 {
					sdy = hiY - yi
				} else if dyc < 0 {
					sdy = yi - loY
				}
				if dzc > 0 {
					sdz = hiZ - zi
				} else if dzc < 0 {
					sdz = zi - loZ
				}
				if sdx < 0 {
					sdx = 0
				}
				if sdy < 0 {
					sdy = 0
				}
				if sdz < 0 {
					sdz = 0
				}
				d2 := sdx*sdx + sdy*sdy + sdz*sdz
				prune := cellB2
				if p2 := c2i * (1 + 0x1p-40); p2 > prune {
					prune = p2
				}
				if d2 > prune {
					continue
				}
				ia := aord[a]
				// Fused distance-and-compact kernel: the 4-wide unrolled
				// block computes four r² in registers, then each feeds both
				// directed membership tests immediately — no scratch-array
				// round trip between a compute pass and a compare pass. One
				// evaluation decides both directions; r² is exactly symmetric
				// (IEEE negation), so the j-side test equals what j's own
				// walk query would compute.
				nI := int32(0)
				if !branchy {
					k := 0
					for ; k+4 <= nb; k += 4 {
						dx0 := xi - sx[k] + shX
						dy0 := yi - sy[k] + shY
						dz0 := zi - sz[k] + shZ
						dx1 := xi - sx[k+1] + shX
						dy1 := yi - sy[k+1] + shY
						dz1 := zi - sz[k+1] + shZ
						dx2 := xi - sx[k+2] + shX
						dy2 := yi - sy[k+2] + shY
						dz2 := zi - sz[k+2] + shZ
						dx3 := xi - sx[k+3] + shX
						dy3 := yi - sy[k+3] + shY
						dz3 := zi - sz[k+3] + shZ
						r20 := dx0*dx0 + dy0*dy0 + dz0*dz0
						r21 := dx1*dx1 + dy1*dy1 + dz1*dz1
						r22 := dx2*dx2 + dy2*dy2 + dz2*dz2
						r23 := dx3*dx3 + dy3*dy3 + dz3*dz3
						if r20 < cMax {
							pjf := uint32(sord[k])
							if r20 < c2i {
								pjf |= slabFlagI
								nI++
							}
							if r20 < scut[k] {
								pjf |= slabFlagJ
								cnt[slabRanks*int(sord[k])+int(rB)]++
							}
							if pjf > slabIdxMask {
								sp.recs = append(sp.recs, slabRec{pi: ia, pjf: pjf, r2: r20})
							}
						}
						if r21 < cMax {
							pjf := uint32(sord[k+1])
							if r21 < c2i {
								pjf |= slabFlagI
								nI++
							}
							if r21 < scut[k+1] {
								pjf |= slabFlagJ
								cnt[slabRanks*int(sord[k+1])+int(rB)]++
							}
							if pjf > slabIdxMask {
								sp.recs = append(sp.recs, slabRec{pi: ia, pjf: pjf, r2: r21})
							}
						}
						if r22 < cMax {
							pjf := uint32(sord[k+2])
							if r22 < c2i {
								pjf |= slabFlagI
								nI++
							}
							if r22 < scut[k+2] {
								pjf |= slabFlagJ
								cnt[slabRanks*int(sord[k+2])+int(rB)]++
							}
							if pjf > slabIdxMask {
								sp.recs = append(sp.recs, slabRec{pi: ia, pjf: pjf, r2: r22})
							}
						}
						if r23 < cMax {
							pjf := uint32(sord[k+3])
							if r23 < c2i {
								pjf |= slabFlagI
								nI++
							}
							if r23 < scut[k+3] {
								pjf |= slabFlagJ
								cnt[slabRanks*int(sord[k+3])+int(rB)]++
							}
							if pjf > slabIdxMask {
								sp.recs = append(sp.recs, slabRec{pi: ia, pjf: pjf, r2: r23})
							}
						}
					}
					for ; k < nb; k++ {
						dx := xi - sx[k] + shX
						dy := yi - sy[k] + shY
						dz := zi - sz[k] + shZ
						r2 := dx*dx + dy*dy + dz*dz
						if r2 < cMax {
							pjf := uint32(sord[k])
							if r2 < c2i {
								pjf |= slabFlagI
								nI++
							}
							if r2 < scut[k] {
								pjf |= slabFlagJ
								cnt[slabRanks*int(sord[k])+int(rB)]++
							}
							if pjf > slabIdxMask {
								sp.recs = append(sp.recs, slabRec{pi: ia, pjf: pjf, r2: r2})
							}
						}
					}
				} else {
					for k := 0; k < nb; k++ {
						dx := xi - sx[k]
						if pbx {
							if dx > hx {
								dx -= lx
							} else if dx < -hx {
								dx += lx
							}
						}
						dy := yi - sy[k]
						if pby {
							if dy > hy {
								dy -= ly
							} else if dy < -hy {
								dy += ly
							}
						}
						dz := zi - sz[k]
						if pbz {
							if dz > hz {
								dz -= lz
							} else if dz < -hz {
								dz += lz
							}
						}
						r2 := dx*dx + dy*dy + dz*dz
						if r2 < cMax {
							pjf := uint32(sord[k])
							if r2 < c2i {
								pjf |= slabFlagI
								nI++
							}
							if r2 < scut[k] {
								pjf |= slabFlagJ
								cnt[slabRanks*int(sord[k])+int(rB)]++
							}
							if pjf > slabIdxMask {
								sp.recs = append(sp.recs, slabRec{pi: ia, pjf: pjf, r2: r2})
							}
						}
					}
				}
				cnt[slabRanks*int(ia)+r] += nI
			}
		}
	}
}

// fillSpill replays one worker's pair records in emission order, placing
// each admitted direction at its row's bucket cursor. Within a bucket,
// emission order is ascending neighbor index (the scan's loop order), so
// the finished rows match the walk's within-rank order exactly.
func (ss *SlabSweep) fillSpill(sp *slabSpill, idx []int32, r2 []float64) {
	cnt := ss.cnt
	for t := range sp.runs {
		run := sp.runs[t]
		end := len(sp.recs)
		if t+1 < len(sp.runs) {
			end = int(sp.runs[t+1].start)
		}
		rA, rB := int(run.rA), int(run.rB)
		for k := int(run.start); k < end; k++ {
			rec := sp.recs[k]
			j := int32(rec.pjf & slabIdxMask)
			d2 := rec.r2
			if rec.pjf&slabFlagI != 0 {
				p := cnt[slabRanks*int(rec.pi)+rA]
				idx[p] = j
				r2[p] = d2
				cnt[slabRanks*int(rec.pi)+rA] = p + 1
			}
			if rec.pjf&slabFlagJ != 0 {
				p := cnt[slabRanks*int(j)+rB]
				idx[p] = rec.pi
				r2[p] = d2
				cnt[slabRanks*int(j)+rB] = p + 1
			}
		}
	}
}

// growF64 resizes s to n entries, reallocating only on capacity growth.
// Contents are unspecified; callers overwrite as needed.
func growF64(s []float64, n int) []float64 {
	if cap(s) < n {
		return make([]float64, n)
	}
	return s[:n]
}
