// Package rsmi provides a rocm-smi-lib-shaped management API over simulated
// AMD devices, the counterpart of internal/nvml for the LUMI-G system model.
// Call shapes follow rsmi_dev_* functions: frequencies are reported through
// frequency tables with a current index, power through the average socket
// power counter, energy through the accumulated energy counter.
package rsmi

import (
	"errors"
	"fmt"

	"sphenergy/internal/gpusim"
)

// Errors mirroring rsmi_status_t failures.
var (
	// ErrInvalidArgs is returned for out-of-range indices.
	ErrInvalidArgs = errors.New("rsmi: invalid args")
	// ErrNotSupported is returned for unsupported requests.
	ErrNotSupported = errors.New("rsmi: not supported")
)

// FaultHook intercepts management-library operations for fault injection,
// mirroring nvml.FaultHook: op names the operation ("energy-read",
// "clock-set", "power-read"), arg carries the requested SM MHz for
// clock-set. Production paths leave the hook nil.
type FaultHook func(op string, arg int) (int, error)

// Library is one rocm-smi context over a node's AMD devices (GCDs).
type Library struct {
	devices []*gpusim.Device
	hook    FaultHook
}

// SetFaultHook installs (or clears, with nil) the fault-injection hook.
func (l *Library) SetFaultHook(h FaultHook) { l.hook = h }

func (l *Library) fault(op string, arg int) (int, error) {
	if l.hook == nil {
		return arg, nil
	}
	return l.hook(op, arg)
}

// New creates a library over AMD devices; non-AMD devices are rejected.
func New(devices []*gpusim.Device) (*Library, error) {
	for _, d := range devices {
		if d.Spec().Vendor != gpusim.AMD {
			return nil, fmt.Errorf("%w: device %q is not an AMD device", ErrInvalidArgs, d.Spec().Name)
		}
	}
	return &Library{devices: devices}, nil
}

// NumMonitorDevices returns the device count (rsmi_num_monitor_devices).
func (l *Library) NumMonitorDevices() int { return len(l.devices) }

func (l *Library) dev(i int) (*gpusim.Device, error) {
	if i < 0 || i >= len(l.devices) {
		return nil, fmt.Errorf("%w: device index %d", ErrInvalidArgs, i)
	}
	return l.devices[i], nil
}

// DevGPUClkFreqGet returns the supported SM clock table and current index
// (rsmi_dev_gpu_clk_freq_get with RSMI_CLK_TYPE_SYS).
func (l *Library) DevGPUClkFreqGet(i int) (freqsMHz []int, current int, err error) {
	d, err := l.dev(i)
	if err != nil {
		return nil, 0, err
	}
	freqsMHz = d.Spec().SupportedClocksMHz()
	cur := d.SMClockMHz()
	current = 0
	best := 1 << 30
	for idx, f := range freqsMHz {
		if diff := abs(f - cur); diff < best {
			best, current = diff, idx
		}
	}
	return freqsMHz, current, nil
}

// DevGPUClkFreqSet pins the SM clock to the table entry at index
// (rsmi_dev_gpu_clk_freq_set). Returns the applied clock in MHz.
func (l *Library) DevGPUClkFreqSet(i, index int) (int, error) {
	d, err := l.dev(i)
	if err != nil {
		return 0, err
	}
	table := d.Spec().SupportedClocksMHz()
	if index < 0 || index >= len(table) {
		return 0, fmt.Errorf("%w: frequency index %d", ErrInvalidArgs, index)
	}
	mhz, err := l.fault("clock-set", table[index])
	if err != nil {
		return 0, err
	}
	if mhz != table[index] {
		// The hook clamped the request; honor the nearest table entry, the
		// same snap the platform firmware applies.
		best, bestDiff := table[0], abs(table[0]-mhz)
		for _, f := range table[1:] {
			if diff := abs(f - mhz); diff < bestDiff {
				best, bestDiff = f, diff
			}
		}
		mhz = best
	}
	return d.SetApplicationClocks(0, mhz)
}

// DevPerfLevelSetAuto restores automatic (governor) clock management
// (rsmi_dev_perf_level_set RSMI_DEV_PERF_LEVEL_AUTO).
func (l *Library) DevPerfLevelSetAuto(i int) error {
	d, err := l.dev(i)
	if err != nil {
		return err
	}
	d.ResetApplicationClocks()
	return nil
}

// DevPowerAveGet returns the current socket power in microwatts
// (rsmi_dev_power_ave_get).
func (l *Library) DevPowerAveGet(i int) (int64, error) {
	d, err := l.dev(i)
	if err != nil {
		return 0, err
	}
	if _, err := l.fault("power-read", 0); err != nil {
		return 0, err
	}
	return int64(d.PowerW() * 1e6), nil
}

// DevEnergyCountGet returns accumulated energy in microjoules
// (rsmi_dev_energy_count_get).
func (l *Library) DevEnergyCountGet(i int) (uint64, error) {
	d, err := l.dev(i)
	if err != nil {
		return 0, err
	}
	if _, err := l.fault("energy-read", 0); err != nil {
		return 0, err
	}
	return uint64(d.EnergyJ() * 1e6), nil
}

// DevPowerCapSet sets the socket power cap in microwatts
// (rsmi_dev_power_cap_set).
func (l *Library) DevPowerCapSet(i int, uw int64) error {
	d, err := l.dev(i)
	if err != nil {
		return err
	}
	if err := d.SetPowerLimit(float64(uw) / 1e6); err != nil {
		return fmt.Errorf("%w: %v", ErrNotSupported, err)
	}
	return nil
}

// DevPowerCapReset restores the default (board maximum) power cap.
func (l *Library) DevPowerCapReset(i int) error {
	d, err := l.dev(i)
	if err != nil {
		return err
	}
	d.ResetPowerLimit()
	return nil
}

// DevPowerCapGet returns the active socket power cap in microwatts
// (rsmi_dev_power_cap_get).
func (l *Library) DevPowerCapGet(i int) (int64, error) {
	d, err := l.dev(i)
	if err != nil {
		return 0, err
	}
	return int64(d.PowerLimitW() * 1e6), nil
}

// DevBusyPercentGet returns coarse utilization (rsmi_dev_busy_percent_get).
func (l *Library) DevBusyPercentGet(i int) (int, error) {
	d, err := l.dev(i)
	if err != nil {
		return 0, err
	}
	return int(d.Utilization()*100 + 0.5), nil
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}
