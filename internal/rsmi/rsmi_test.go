package rsmi

import (
	"testing"

	"sphenergy/internal/gpusim"
)

func newLib(t *testing.T, n int) *Library {
	t.Helper()
	devs := make([]*gpusim.Device, n)
	for i := range devs {
		devs[i] = gpusim.NewDevice(gpusim.MI250XGCD(), i)
	}
	lib, err := New(devs)
	if err != nil {
		t.Fatal(err)
	}
	return lib
}

func TestRejectsNvidiaDevices(t *testing.T) {
	nv := gpusim.NewDevice(gpusim.A100SXM480GB(), 0)
	if _, err := New([]*gpusim.Device{nv}); err == nil {
		t.Error("Nvidia device accepted by rsmi")
	}
}

func TestNumMonitorDevices(t *testing.T) {
	if got := newLib(t, 3).NumMonitorDevices(); got != 3 {
		t.Errorf("NumMonitorDevices = %d", got)
	}
}

func TestClkFreqGetSet(t *testing.T) {
	lib := newLib(t, 1)
	freqs, cur, err := lib.DevGPUClkFreqGet(0)
	if err != nil {
		t.Fatal(err)
	}
	if freqs[0] != 1700 {
		t.Errorf("top frequency %d, want 1700", freqs[0])
	}
	if cur < 0 || cur >= len(freqs) {
		t.Errorf("current index %d out of range", cur)
	}
	// Set to the second-highest entry.
	applied, err := lib.DevGPUClkFreqSet(0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if applied != freqs[1] {
		t.Errorf("applied %d, want %d", applied, freqs[1])
	}
	_, cur, _ = lib.DevGPUClkFreqGet(0)
	if cur != 1 {
		t.Errorf("current index after set = %d, want 1", cur)
	}
}

func TestClkFreqSetBadIndex(t *testing.T) {
	lib := newLib(t, 1)
	if _, err := lib.DevGPUClkFreqSet(0, 9999); err == nil {
		t.Error("bad frequency index accepted")
	}
	if _, err := lib.DevGPUClkFreqSet(5, 0); err == nil {
		t.Error("bad device index accepted")
	}
}

func TestPerfLevelAuto(t *testing.T) {
	lib := newLib(t, 1)
	lib.DevGPUClkFreqSet(0, 0)
	if err := lib.DevPerfLevelSetAuto(0); err != nil {
		t.Fatal(err)
	}
}

func TestPowerAndEnergyCounters(t *testing.T) {
	devs := []*gpusim.Device{gpusim.NewDevice(gpusim.MI250XGCD(), 0)}
	lib, _ := New(devs)
	devs[0].Idle(3)
	uw, err := lib.DevPowerAveGet(0)
	if err != nil {
		t.Fatal(err)
	}
	if uw <= 0 {
		t.Errorf("power %d µW", uw)
	}
	uj, err := lib.DevEnergyCountGet(0)
	if err != nil {
		t.Fatal(err)
	}
	// In auto mode the governor adds its stability margin on top of the
	// idle floor, so the counter sits between floor and 1.5x floor.
	floorUJ := uint64(devs[0].Spec().IdlePowerW * 3 * 1e6)
	if uj < floorUJ || uj > floorUJ*3/2 {
		t.Errorf("energy %d µJ, want in [%d, %d]", uj, floorUJ, floorUJ*3/2)
	}
}

func TestBusyPercent(t *testing.T) {
	lib := newLib(t, 1)
	b, err := lib.DevBusyPercentGet(0)
	if err != nil {
		t.Fatal(err)
	}
	if b < 0 || b > 100 {
		t.Errorf("busy %d%%", b)
	}
}

func TestPowerCapSetGetReset(t *testing.T) {
	devs := []*gpusim.Device{gpusim.NewDevice(gpusim.MI250XGCD(), 0)}
	lib, _ := New(devs)
	if err := lib.DevPowerCapSet(0, 200e6); err != nil { // 200 W
		t.Fatal(err)
	}
	uw, err := lib.DevPowerCapGet(0)
	if err != nil || uw != 200e6 {
		t.Errorf("cap %d µW, %v", uw, err)
	}
	if err := lib.DevPowerCapSet(0, 1e12); err == nil {
		t.Error("absurd cap accepted")
	}
	if err := lib.DevPowerCapReset(0); err != nil {
		t.Fatal(err)
	}
	uw, _ = lib.DevPowerCapGet(0)
	if uw != int64(devs[0].Spec().TDPW*1e6) {
		t.Errorf("cap after reset %d µW", uw)
	}
	// Bad device indices.
	if err := lib.DevPowerCapSet(5, 1); err == nil {
		t.Error("bad index accepted")
	}
	if _, err := lib.DevPowerCapGet(5); err == nil {
		t.Error("bad index accepted")
	}
	if err := lib.DevPowerCapReset(5); err == nil {
		t.Error("bad index accepted")
	}
}
