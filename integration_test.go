package sphenergy

// Integration tests exercising the full stack across module boundaries:
// tuner -> strategy -> runner -> sensors -> Slurm accounting ->
// pm_counters -> analysis, plus the real SPH solver driving multi-step
// physics — the end-to-end paths a downstream user depends on.

import (
	"bytes"
	"math"
	"path/filepath"
	"strings"
	"testing"

	"sphenergy/internal/cluster"
	"sphenergy/internal/core"
	"sphenergy/internal/domain"
	"sphenergy/internal/gravity"
	"sphenergy/internal/initcond"
	"sphenergy/internal/instr"
	"sphenergy/internal/pmcounters"
	"sphenergy/internal/report"
	"sphenergy/internal/slurm"
	"sphenergy/internal/sph"
)

// TestFullWorkflowTuneRunReport is the paper's complete workflow: tune
// per-kernel frequencies, run ManDyn against a baseline, write and re-read
// the report, derive the analysis breakdowns.
func TestFullWorkflowTuneRunReport(t *testing.T) {
	system := MiniHPC()
	table, err := TuneFrequencies(system, Turbulence, 450*450*450, 150)
	if err != nil {
		t.Fatal(err)
	}

	cfg := Config{
		System:           system,
		Ranks:            2,
		Sim:              Turbulence,
		ParticlesPerRank: 450 * 450 * 450,
		Steps:            10,
	}
	base, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.NewStrategy = ManDyn(table)
	md, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}

	// The tuned strategy saves GPU energy on the multi-rank run too.
	if md.GPUEnergyJ() >= base.GPUEnergyJ() {
		t.Errorf("ManDyn energy %v not below baseline %v", md.GPUEnergyJ(), base.GPUEnergyJ())
	}
	if md.WallTimeS > base.WallTimeS*1.06 {
		t.Errorf("ManDyn time %v too far above baseline %v", md.WallTimeS, base.WallTimeS)
	}

	// Report roundtrip through JSON and CSV.
	dir := t.TempDir()
	jsonPath := filepath.Join(dir, "mandyn.json")
	if err := md.Report.WriteFile(jsonPath); err != nil {
		t.Fatal(err)
	}
	back, err := instr.ReadReportFile(jsonPath)
	if err != nil {
		t.Fatal(err)
	}
	if back.Strategy != "mandyn" || len(back.Ranks) != 2 {
		t.Error("report metadata lost through JSON")
	}
	var csvBuf bytes.Buffer
	if err := md.Report.WriteCSV(&csvBuf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(csvBuf.String(), "MomentumEnergy") {
		t.Error("CSV export lost function rows")
	}

	// Analysis layer over the loaded report.
	db := report.NewDeviceBreakdown(back, system, "integration")
	if db.TotalJ() <= 0 || db.GPUShare() <= 0 {
		t.Error("device breakdown empty")
	}
	fb := report.NewFunctionBreakdown(back, "integration")
	if fb.TopConsumers(1)[0] != core.FnMomentum {
		t.Errorf("top consumer %v", fb.TopConsumers(1))
	}
}

// TestSlurmPMCountersConsistency submits a job, then cross-checks three
// independent accounting paths: Slurm TRES, the instrumentation report,
// and the node-level Cray pm_counters.
func TestSlurmPMCountersConsistency(t *testing.T) {
	mgr := slurm.NewManager()
	job, err := mgr.Submit(core.Config{
		System:           cluster.CSCSA100(),
		Ranks:            4,
		Sim:              core.Turbulence,
		ParticlesPerRank: 50e6,
		Steps:            10,
	}, slurm.SubmitOptions{
		JobName: "consistency",
		SetupS:  20,
		TRES:    slurm.ParseTRES("billing,cpu,energy,gres/gpu"),
	})
	if err != nil {
		t.Fatal(err)
	}

	// pm_counters node totals must sum to the Slurm ConsumedEnergy (one
	// node here, counters quantized at 10 Hz).
	var pmTotal float64
	for _, node := range job.Result.System.Nodes {
		pmTotal += pmcounters.New(node).Energy()
	}
	rel := math.Abs(pmTotal-job.ConsumedEnergyJ) / job.ConsumedEnergyJ
	if rel > 0.01 {
		t.Errorf("pm_counters total %v vs Slurm %v (%.2f%% off)", pmTotal, job.ConsumedEnergyJ, 100*rel)
	}

	// The instrumentation report equals Slurm minus the setup phase.
	loop := job.Result.Report.TotalEnergyJ
	if math.Abs(loop+job.Result.SetupEnergyJ-job.ConsumedEnergyJ) > 1e-6*job.ConsumedEnergyJ {
		t.Error("loop + setup != consumed energy")
	}

	// Per-card attribution across ranks reconciles with per-rank GPU sums.
	node := job.Result.System.Nodes[0]
	var cards []float64
	for c := 0; c < node.NumCards(); c++ {
		cards = append(cards, node.CardEnergyJ(c))
	}
	busy := make([]float64, len(node.Devices))
	for i, d := range node.Devices {
		busy[i] = d.BusySeconds()
	}
	attributed := report.RankGPUAttribution(cards, node.Spec.DiesPerCard, busy)
	var attrSum, devSum float64
	for i, d := range node.Devices {
		attrSum += attributed[i]
		devSum += d.EnergyJ()
	}
	if math.Abs(attrSum-devSum) > 1e-6*devSum {
		t.Errorf("attribution sum %v != device sum %v", attrSum, devSum)
	}
}

// TestPhysicsPipelineMultiStep integrates the real SPH solver for several
// steps and checks global conservation properties across module
// boundaries (initcond -> sph -> gravity).
func TestPhysicsPipelineMultiStep(t *testing.T) {
	p, opt := initcond.Turbulence(initcond.DefaultTurbulence(12))
	opt.NgTarget = 32
	st := sph.NewState(p, opt)
	e0 := st.ComputeEnergies(nil)
	for i := 0; i < 8; i++ {
		st.FindNeighbors()
		st.XMass()
		st.NormalizationGradh()
		st.EquationOfState()
		st.IADVelocityDivCurl()
		st.AVSwitches(st.Dt)
		st.MomentumEnergy()
		st.UpdateQuantities(st.Timestep())
	}
	e := st.ComputeEnergies(nil)
	if math.Abs(e.Mass-e0.Mass) > 1e-12 {
		t.Errorf("mass drifted: %v -> %v", e0.Mass, e.Mass)
	}
	// Momentum stays near zero (initcond removes bulk motion; forces
	// conserve it).
	mom := math.Abs(e.MomX) + math.Abs(e.MomY) + math.Abs(e.MomZ)
	if mom > 1e-10 {
		t.Errorf("net momentum grew to %v", mom)
	}
	// Subsonic box: kinetic energy decays or holds, never explodes.
	if e.Kinetic > e0.Kinetic*1.2 {
		t.Errorf("kinetic energy grew: %v -> %v", e0.Kinetic, e.Kinetic)
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
}

// TestEvrardCollapseEnergyBudget runs the gravity-coupled pipeline and
// checks the collapse converts potential energy while approximately
// conserving the total.
func TestEvrardCollapseEnergyBudget(t *testing.T) {
	p, opt := initcond.Evrard(initcond.DefaultEvrard(12))
	opt.NgTarget = 32
	st := sph.NewState(p, opt)
	pot := make([]float64, p.N)
	tree := gravity.Build(p.X, p.Y, p.Z, p.M, opt.GravTheta, opt.GravEps, opt.GravG)
	tree.AccelerationsInto(p.AX, p.AY, p.AZ, pot)
	e0 := st.ComputeEnergies(pot)
	for i := 0; i < 20; i++ {
		st.FindNeighbors()
		st.XMass()
		st.NormalizationGradh()
		st.EquationOfState()
		st.IADVelocityDivCurl()
		st.AVSwitches(st.Dt)
		st.MomentumEnergy()
		tree = gravity.Build(p.X, p.Y, p.Z, p.M, opt.GravTheta, opt.GravEps, opt.GravG)
		tree.AccelerationsInto(p.AX, p.AY, p.AZ, pot)
		st.UpdateQuantities(st.Timestep())
	}
	e := st.ComputeEnergies(pot)
	if e.Kinetic <= e0.Kinetic {
		t.Error("collapse generated no kinetic energy")
	}
	if e.Potential >= e0.Potential {
		t.Error("potential did not deepen during collapse")
	}
	drift := math.Abs(e.Total()-e0.Total()) / math.Abs(e0.Total())
	if drift > 0.05 {
		t.Errorf("total energy drifted %.1f%% in 20 steps", 100*drift)
	}
}

// TestDistributedDensityMatchesSerial cross-checks the domain layer: the
// density computed on rank-local extended sets equals the serial result.
func TestDistributedDensityMatchesSerial(t *testing.T) {
	// Serial reference.
	global, opt := initcond.Turbulence(initcond.DefaultTurbulence(12))
	opt.NgTarget = 32
	serial := sph.NewState(global, opt)
	serial.FindNeighbors()
	serial.XMass()

	// Distributed: same particles split over 2 ranks via the domain layer.
	global2, _ := initcond.Turbulence(initcond.DefaultTurbulence(12))
	half := global2.N / 2
	ranks := []*sph.Particles{sph.NewParticles(half), sph.NewParticles(global2.N - half)}
	for i := 0; i < global2.N; i++ {
		dst, j := ranks[0], i
		if i >= half {
			dst, j = ranks[1], i-half
		}
		dst.X[j], dst.Y[j], dst.Z[j] = global2.X[i], global2.Y[i], global2.Z[i]
		dst.M[j], dst.H[j], dst.U[j] = global2.M[i], global2.H[i], global2.U[i]
		dst.Rho[j] = global2.Rho[i]
	}
	d := domain.New(opt.Box, 2, 64)
	out, _, err := d.Sync(ranks)
	if err != nil {
		t.Fatal(err)
	}
	// Compute density per rank with halos; collect by position key.
	got := map[float64]float64{}
	for r := range out {
		radius := 2 * out[r].MaxH() * 1.3
		ext, _, err := d.HaloExchange(out, r, radius)
		if err != nil {
			t.Fatal(err)
		}
		st := sph.NewState(ext, opt)
		// Fixed h pass: count+density without h adaptation to keep the
		// serial/distributed states identical.
		st.Grid = sph.BuildGridFor(st)
		st.MaxH = ext.MaxH()
		st.XMass()
		for i := 0; i < out[r].N; i++ {
			got[ext.X[i]*1e6+ext.Y[i]] = ext.Rho[i]
		}
	}
	// Serial pass with the same fixed-h treatment.
	ref := sph.NewState(global2, opt)
	ref.Grid = sph.BuildGridFor(ref)
	ref.MaxH = global2.MaxH()
	ref.XMass()
	mismatches := 0
	for i := 0; i < global2.N; i++ {
		key := global2.X[i]*1e6 + global2.Y[i]
		rho, ok := got[key]
		if !ok {
			mismatches++
			continue
		}
		if math.Abs(rho-global2.Rho[i]) > 1e-9 {
			mismatches++
		}
	}
	if mismatches > 0 {
		t.Errorf("%d/%d densities differ between serial and distributed", mismatches, global2.N)
	}
}
